// Package ast defines the abstract syntax of IDLOG programs (§2.2 of the
// paper): two-sorted terms, ordinary atoms, ID-atoms p[s], arithmetic
// atoms, DATALOG^C choice literals, clauses and programs.
package ast

import (
	"fmt"
	"sort"
	"unicode"

	"idlog/internal/value"
)

// Term is a variable or a constant of either sort.
type Term interface {
	isTerm()
	fmt.Stringer
}

// Var is a logical variable. Variables with the name "_" are anonymous:
// every occurrence is distinct.
type Var struct {
	Name string
}

func (Var) isTerm() {}

// String implements fmt.Stringer.
func (v Var) String() string { return v.Name }

// Anonymous reports whether v is the anonymous variable.
func (v Var) Anonymous() bool { return v.Name == "_" }

// Const is a constant term of either sort.
type Const struct {
	Val value.Value
}

func (Const) isTerm() {}

// String renders the constant in concrete syntax: sort-i constants as
// digits, sort-u constants bare when they lex as plain identifiers and
// single-quoted (with ” escaping) otherwise, so that printed programs
// always re-parse.
func (c Const) String() string {
	if c.Val.IsInt() {
		return c.Val.String()
	}
	name := c.Val.String()
	if isPlainIdent(name) {
		return name
	}
	quoted := "'"
	for _, r := range name {
		if r == '\'' {
			quoted += "''"
			continue
		}
		quoted += string(r)
	}
	return quoted + "'"
}

// isPlainIdent reports whether name lexes as a bare lower-case
// identifier (mirrors the lexer's rules).
func isPlainIdent(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		if i == 0 {
			if !unicode.IsLower(r) {
				return false
			}
			continue
		}
		if r != '_' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// S returns the sort-u constant term for name.
func S(name string) Const { return Const{Val: value.Str(name)} }

// N returns the sort-i constant term for n.
func N(n int64) Const { return Const{Val: value.Int(n)} }

// V returns the variable term named name.
func V(name string) Var { return Var{Name: name} }

// Atom is a predicate applied to terms. If IsID is true the atom is the
// ID-version of Pred grouped by the (0-based) argument positions in Group;
// its last argument is the tuple-identifier and its arity is one more than
// Pred's. Group positions refer to the base predicate's arguments.
type Atom struct {
	Pred  string
	IsID  bool
	Group []int
	Args  []Term
}

// BaseArity returns the arity of the underlying ordinary predicate:
// len(Args) for ordinary atoms and len(Args)-1 for ID-atoms.
func (a *Atom) BaseArity() int {
	if a.IsID {
		return len(a.Args) - 1
	}
	return len(a.Args)
}

// Clone returns a deep copy of the atom (terms are immutable and shared).
func (a *Atom) Clone() *Atom {
	c := &Atom{Pred: a.Pred, IsID: a.IsID}
	c.Group = append([]int(nil), a.Group...)
	c.Args = append([]Term(nil), a.Args...)
	return c
}

// Choice is the DATALOG^C choice operator choice((X...),(Y...)) (§3.2.2):
// within the clause it occurs in, for each binding of the domain terms
// exactly one binding of the range terms is chosen.
type Choice struct {
	Domain []Term
	Range  []Term
}

// Clone returns a deep copy.
func (c *Choice) Clone() *Choice {
	return &Choice{
		Domain: append([]Term(nil), c.Domain...),
		Range:  append([]Term(nil), c.Range...),
	}
}

// Literal is a body element: a possibly negated atom, or a choice literal.
// Exactly one of Atom and Choice is non-nil.
type Literal struct {
	Neg    bool
	Atom   *Atom
	Choice *Choice
}

// IsChoice reports whether the literal is a choice operator occurrence.
func (l *Literal) IsChoice() bool { return l.Choice != nil }

// Clone returns a deep copy.
func (l *Literal) Clone() *Literal {
	c := &Literal{Neg: l.Neg}
	if l.Atom != nil {
		c.Atom = l.Atom.Clone()
	}
	if l.Choice != nil {
		c.Choice = l.Choice.Clone()
	}
	return c
}

// Clause is an IDLOG clause Head :- Body. A clause with an empty body and
// a ground head is a fact. Heads are always ordinary (non-ID) atoms
// containing no succ or equality, which the parser and analyzer enforce.
type Clause struct {
	Head *Atom
	Body []*Literal
}

// IsFact reports whether the clause has an empty body.
func (c *Clause) IsFact() bool { return len(c.Body) == 0 }

// Clone returns a deep copy.
func (c *Clause) Clone() *Clause {
	n := &Clause{Head: c.Head.Clone()}
	for _, l := range c.Body {
		n.Body = append(n.Body, l.Clone())
	}
	return n
}

// Program is a finite set of clauses, in source order.
type Program struct {
	Clauses []*Clause
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	n := &Program{Clauses: make([]*Clause, len(p.Clauses))}
	for i, c := range p.Clauses {
		n.Clauses[i] = c.Clone()
	}
	return n
}

// PredSig describes a predicate occurrence: name and base arity.
type PredSig struct {
	Name  string
	Arity int
}

// String implements fmt.Stringer ("name/arity").
func (s PredSig) String() string { return fmt.Sprintf("%s/%d", s.Name, s.Arity) }

// HeadPreds returns the set of predicates appearing in clause heads
// (the output predicates in the paper's terminology, §3.1), sorted.
func (p *Program) HeadPreds() []PredSig {
	set := map[PredSig]bool{}
	for _, c := range p.Clauses {
		set[PredSig{c.Head.Pred, c.Head.BaseArity()}] = true
	}
	return sortedSigs(set)
}

// InputPreds returns the predicates that occur (possibly as ID-versions)
// in clause bodies but never in a head, excluding arithmetic built-ins:
// the program's input predicates (§3.1).
func (p *Program) InputPreds(isBuiltin func(string) bool) []PredSig {
	heads := map[string]bool{}
	for _, c := range p.Clauses {
		heads[c.Head.Pred] = true
	}
	set := map[PredSig]bool{}
	for _, c := range p.Clauses {
		for _, l := range c.Body {
			if l.Atom == nil {
				continue
			}
			a := l.Atom
			if heads[a.Pred] || (isBuiltin != nil && isBuiltin(a.Pred)) {
				continue
			}
			set[PredSig{a.Pred, a.BaseArity()}] = true
		}
	}
	return sortedSigs(set)
}

func sortedSigs(set map[PredSig]bool) []PredSig {
	out := make([]PredSig, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// Vars appends the variables of the terms to dst, in order of occurrence,
// without deduplication. Anonymous variables are included.
func Vars(dst []Var, terms ...Term) []Var {
	for _, t := range terms {
		if v, ok := t.(Var); ok {
			dst = append(dst, v)
		}
	}
	return dst
}

// ClauseVars returns the distinct named variables of the clause in order
// of first occurrence (head first, then body).
func ClauseVars(c *Clause) []Var {
	seen := map[string]bool{}
	var out []Var
	add := func(terms []Term) {
		for _, t := range terms {
			if v, ok := t.(Var); ok && !v.Anonymous() && !seen[v.Name] {
				seen[v.Name] = true
				out = append(out, v)
			}
		}
	}
	add(c.Head.Args)
	for _, l := range c.Body {
		if l.Atom != nil {
			add(l.Atom.Args)
		}
		if l.Choice != nil {
			add(l.Choice.Domain)
			add(l.Choice.Range)
		}
	}
	return out
}

// HasChoice reports whether any clause of the program contains a choice
// literal (i.e. the program is DATALOG^C rather than pure IDLOG).
func (p *Program) HasChoice() bool {
	for _, c := range p.Clauses {
		for _, l := range c.Body {
			if l.IsChoice() {
				return true
			}
		}
	}
	return false
}

// HasID reports whether any clause uses an ID-atom.
func (p *Program) HasID() bool {
	for _, c := range p.Clauses {
		for _, l := range c.Body {
			if l.Atom != nil && l.Atom.IsID {
				return true
			}
		}
	}
	return false
}
