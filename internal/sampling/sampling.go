// Package sampling provides the paper's flagship application (§1, §3.3):
// sampling queries — non-deterministic queries that choose a fixed
// number of samples from every group of a relation — expressed as IDLOG
// programs of the form
//
//	sample(X1, ..., Xn) :- r[s](X1, ..., Xn, T), T < k.
//
// Program generates that program, Sample runs it through the engine,
// Direct computes the same result straight from the ID-relation
// machinery (an independent oracle used to cross-check the engine), and
// Check verifies the sampling-query specification: the sample is a
// subset of the base relation containing exactly min(k, |group|) tuples
// from every group.
package sampling

import (
	"fmt"

	"idlog/internal/analysis"
	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// Spec describes a sampling query.
type Spec struct {
	// Relation is the base (input) predicate name.
	Relation string
	// Arity is the base predicate's arity.
	Arity int
	// GroupCols are the 0-based grouping columns (empty = sample from
	// the whole relation).
	GroupCols []int
	// K is the number of samples per group.
	K int
	// Output is the head predicate name (default "sample").
	Output string
}

func (s Spec) output() string {
	if s.Output == "" {
		return "sample"
	}
	return s.Output
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Relation == "" || s.Arity <= 0 {
		return fmt.Errorf("sampling: relation name and positive arity required")
	}
	if s.K <= 0 {
		return fmt.Errorf("sampling: K must be positive, got %d", s.K)
	}
	for _, c := range s.GroupCols {
		if c < 0 || c >= s.Arity {
			return fmt.Errorf("sampling: group column %d out of range for arity %d", c, s.Arity)
		}
	}
	return nil
}

// Program generates the IDLOG sampling program for the spec:
//
//	out(V1, ..., Vn) :- r[s](V1, ..., Vn, T), T < k.
//
// For K = 1 the comparison specializes to T = 0, matching the paper's
// one-sample examples (Example 4).
func Program(s Spec) (*ast.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	vars := make([]ast.Term, s.Arity)
	for i := range vars {
		vars[i] = ast.V(fmt.Sprintf("V%d", i+1))
	}
	idArgs := append(append([]ast.Term{}, vars...), ast.V("T"))
	group := append([]int{}, s.GroupCols...)
	if group == nil {
		group = []int{}
	}
	body := []*ast.Literal{
		{Atom: &ast.Atom{Pred: s.Relation, IsID: true, Group: group, Args: idArgs}},
	}
	if s.K == 1 {
		body = append(body, &ast.Literal{Atom: &ast.Atom{Pred: "eq", Args: []ast.Term{ast.V("T"), ast.N(0)}}})
	} else {
		body = append(body, &ast.Literal{Atom: &ast.Atom{Pred: "lt", Args: []ast.Term{ast.V("T"), ast.N(int64(s.K))}}})
	}
	return &ast.Program{Clauses: []*ast.Clause{{
		Head: &ast.Atom{Pred: s.output(), Args: vars},
		Body: body,
	}}}, nil
}

// Sample runs the sampling program against db with a seeded random
// oracle and returns the sample relation together with the run result.
func Sample(s Spec, db *core.Database, seed uint64) (*relation.Relation, *core.Result, error) {
	return SampleWith(s, db, seed, core.Options{})
}

// SampleWith is Sample under caller-supplied evaluation options —
// in particular a guard governing the run (opts.Oracle is overridden
// by the seeded oracle). A tripped run propagates the partial result
// with its typed error.
func SampleWith(s Spec, db *core.Database, seed uint64, opts core.Options) (*relation.Relation, *core.Result, error) {
	prog, err := Program(s)
	if err != nil {
		return nil, nil, err
	}
	info, err := analysis.Analyze(prog)
	if err != nil {
		return nil, nil, err
	}
	opts.Oracle = relation.RandomOracle{Seed: seed}
	res, err := core.Eval(info, db, opts)
	if err != nil {
		return nil, res, err
	}
	return res.Relation(s.output()), res, nil
}

// Direct computes the sample without the logic engine: materialize the
// ID-relation under the same oracle and keep the tuples with tid < K.
// Given the same seed it must coincide exactly with Sample; tests use it
// as an independent oracle for the engine.
func Direct(s Spec, base *relation.Relation, seed uint64) (*relation.Relation, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	idr, err := relation.MaterializeID(base, s.Relation+"_id", s.GroupCols, relation.RandomOracle{Seed: seed})
	if err != nil {
		return nil, err
	}
	out := relation.New(s.output(), base.Arity())
	tid := base.Arity()
	for _, t := range idr.Tuples() {
		if t[tid].Num < int64(s.K) {
			out.MustInsert(t[:tid])
		}
	}
	return out, nil
}

// Check verifies that sample satisfies the sampling-query specification
// against the base relation: sample ⊆ base, and every group of base
// contributes exactly min(K, |group|) tuples.
func Check(s Spec, sample, base *relation.Relation) error {
	for _, t := range sample.Tuples() {
		if !base.Contains(t) {
			return fmt.Errorf("sampling: %v not in base relation", t)
		}
	}
	counts := map[string]int{}
	for _, t := range sample.Tuples() {
		counts[t.ProjectKey(s.GroupCols)]++
	}
	for _, g := range base.Groups(s.GroupCols) {
		want := s.K
		if len(g.Members) < want {
			want = len(g.Members)
		}
		if got := counts[g.Key.Key()]; got != want {
			return fmt.Errorf("sampling: group %v has %d samples, want %d", g.Key, got, want)
		}
	}
	// No samples from phantom groups.
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != sample.Len() {
		return fmt.Errorf("sampling: internal accounting error")
	}
	return nil
}

// Frequencies counts, over the given seeds, how often each base tuple is
// selected; used to assess sampling uniformity (and by the E1
// experiment's fairness report).
func Frequencies(s Spec, db *core.Database, seeds []uint64) (map[string]int, error) {
	return FrequenciesWith(s, db, seeds, core.Options{})
}

// FrequenciesWith is Frequencies under caller-supplied evaluation
// options. The guard (if any) governs the whole sweep: it is
// checkpointed between seeds, and a trip returns the counts gathered so
// far with the typed error.
func FrequenciesWith(s Spec, db *core.Database, seeds []uint64, opts core.Options) (map[string]int, error) {
	freq := map[string]int{}
	for _, seed := range seeds {
		if opts.Guard != nil {
			if err := opts.Guard.Checkpoint(); err != nil {
				return freq, err
			}
		}
		sample, _, err := SampleWith(s, db, seed, opts)
		if err != nil {
			return freq, err
		}
		for _, t := range sample.Tuples() {
			freq[t.String()]++
		}
	}
	return freq, nil
}

// EmployeeDB builds the synthetic emp(Name, Dept) workload used by the
// paper's running examples and the E1/E2 experiments: depts departments
// with perDept employees each.
func EmployeeDB(depts, perDept int) *core.Database {
	db := core.NewDatabase()
	for d := 0; d < depts; d++ {
		dept := value.Str(fmt.Sprintf("dept%03d", d))
		for e := 0; e < perDept; e++ {
			name := value.Str(fmt.Sprintf("emp%03d_%04d", d, e))
			_ = db.Add("emp", value.Tuple{name, dept})
		}
	}
	return db
}
