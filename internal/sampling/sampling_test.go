package sampling

import (
	"strings"
	"testing"

	"idlog/internal/core"
	"idlog/internal/value"
)

func empSpec(k int) Spec {
	return Spec{Relation: "emp", Arity: 2, GroupCols: []int{1}, K: k, Output: "sample"}
}

func TestProgramTextK2(t *testing.T) {
	prog, err := Program(empSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	want := "sample(V1, V2) :- emp[2](V1, V2, T), T < 2.\n"
	if prog.String() != want {
		t.Fatalf("program = %q, want %q", prog.String(), want)
	}
}

func TestProgramTextK1UsesTidZero(t *testing.T) {
	prog, err := Program(empSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "T = 0") {
		t.Fatalf("K=1 program should test T = 0: %q", prog.String())
	}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{Relation: "", Arity: 2, K: 1},
		{Relation: "r", Arity: 0, K: 1},
		{Relation: "r", Arity: 2, K: 0},
		{Relation: "r", Arity: 2, K: 1, GroupCols: []int{5}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d not rejected", i)
		}
	}
}

func TestSampleSatisfiesSpec(t *testing.T) {
	db := EmployeeDB(4, 7)
	for _, k := range []int{1, 2, 3, 7} {
		spec := empSpec(k)
		for seed := uint64(0); seed < 5; seed++ {
			sample, _, err := Sample(spec, db, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := Check(spec, sample, db.Relation("emp")); err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			if sample.Len() != 4*k {
				t.Fatalf("k=%d: sample size %d, want %d", k, sample.Len(), 4*k)
			}
		}
	}
}

func TestKLargerThanGroup(t *testing.T) {
	// Departments with fewer than K employees contribute all of them.
	db := core.NewDatabase()
	_ = db.AddAll("emp",
		value.Strs("a", "d1"), value.Strs("b", "d1"), value.Strs("c", "d1"),
		value.Strs("x", "d2"))
	spec := empSpec(2)
	sample, _, err := Sample(spec, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(spec, sample, db.Relation("emp")); err != nil {
		t.Fatal(err)
	}
	if sample.Len() != 3 { // 2 from d1 + 1 from d2
		t.Fatalf("sample = %v", sample)
	}
}

func TestDirectMatchesEngine(t *testing.T) {
	db := EmployeeDB(5, 6)
	spec := empSpec(2)
	for seed := uint64(0); seed < 10; seed++ {
		viaEngine, _, err := Sample(spec, db, seed)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := Direct(spec, db.Relation("emp"), seed)
		if err != nil {
			t.Fatal(err)
		}
		if !viaEngine.Equal(direct) {
			t.Fatalf("seed %d: engine and direct samples differ:\n%v\n%v", seed, viaEngine, direct)
		}
	}
}

func TestUngroupedGlobalSample(t *testing.T) {
	db := EmployeeDB(3, 5)
	spec := Spec{Relation: "emp", Arity: 2, K: 4}
	sample, _, err := Sample(spec, db, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Len() != 4 {
		t.Fatalf("global sample size = %d, want 4", sample.Len())
	}
	if err := Check(spec, sample, db.Relation("emp")); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	db := EmployeeDB(2, 3)
	spec := empSpec(2)
	sample, _, err := Sample(spec, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Remove one tuple: count violation.
	broken := sample.Filter("sample", func(tp value.Tuple) bool {
		return !tp.Equal(sample.Tuples()[0])
	})
	if err := Check(spec, broken, db.Relation("emp")); err == nil {
		t.Fatalf("undersized sample not detected")
	}
	// Foreign tuple: subset violation.
	foreign := sample.Clone()
	foreign.MustInsert(value.Strs("ghost", "dept000"))
	if err := Check(spec, foreign, db.Relation("emp")); err == nil {
		t.Fatalf("foreign tuple not detected")
	}
}

func TestSamplingIsRoughlyUniform(t *testing.T) {
	// Over many seeds every employee of a department should be picked a
	// comparable number of times (loose 3x bound, not a strict
	// statistical test).
	db := EmployeeDB(1, 5)
	spec := empSpec(1)
	seeds := make([]uint64, 400)
	for i := range seeds {
		seeds[i] = uint64(i)
	}
	freq, err := Frequencies(spec, db, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(freq) != 5 {
		t.Fatalf("only %d employees ever sampled: %v", len(freq), freq)
	}
	min, max := 1<<30, 0
	for _, n := range freq {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max > 3*min {
		t.Fatalf("sampling badly skewed: min=%d max=%d (%v)", min, max, freq)
	}
}

func TestDifferentSeedsDifferentSamples(t *testing.T) {
	db := EmployeeDB(3, 8)
	spec := empSpec(2)
	fps := map[string]bool{}
	for seed := uint64(0); seed < 20; seed++ {
		s, _, err := Sample(spec, db, seed)
		if err != nil {
			t.Fatal(err)
		}
		fps[s.Fingerprint()] = true
	}
	if len(fps) < 5 {
		t.Fatalf("20 seeds gave only %d distinct samples", len(fps))
	}
}

func TestEmployeeDBShape(t *testing.T) {
	db := EmployeeDB(3, 4)
	emp := db.Relation("emp")
	if emp.Len() != 12 {
		t.Fatalf("emp size = %d", emp.Len())
	}
	if got := len(emp.Groups([]int{1})); got != 3 {
		t.Fatalf("departments = %d", got)
	}
}
