package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryNeverFires(t *testing.T) {
	var r *Registry
	if err := r.Hit("x"); err != nil {
		t.Fatalf("nil registry fired: %v", err)
	}
	r.Arm("x", Fault{})
	r.Disarm("x")
	r.DisarmAll()
	if r.Hits("x") != 0 || r.Fired("x") != 0 || r.Armed() != nil {
		t.Fatal("nil registry reported state")
	}
}

func TestUnarmedPointCountsHits(t *testing.T) {
	r := New()
	for i := 0; i < 3; i++ {
		if err := r.Hit("p"); err != nil {
			t.Fatalf("unarmed point fired: %v", err)
		}
	}
	if r.Hits("p") != 3 {
		t.Fatalf("hits = %d, want 3", r.Hits("p"))
	}
}

func TestAfterAndCountSchedule(t *testing.T) {
	r := New()
	want := errors.New("boom")
	r.Arm("p", Fault{After: 2, Count: 2, Err: want})
	var got []bool
	for i := 0; i < 6; i++ {
		err := r.Hit("p")
		got = append(got, err != nil)
		if err != nil && !errors.Is(err, want) {
			t.Fatalf("hit %d: err = %v, want wrapping %v", i, err, want)
		}
	}
	exp := []bool{false, false, true, true, false, false}
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("fire pattern %v, want %v", got, exp)
		}
	}
	if r.Fired("p") != 2 {
		t.Fatalf("fired = %d, want 2", r.Fired("p"))
	}
}

func TestCountZeroFiresUntilDisarm(t *testing.T) {
	r := New()
	r.Arm("p", Fault{})
	for i := 0; i < 4; i++ {
		if !errors.Is(r.Hit("p"), ErrInjected) {
			t.Fatalf("hit %d did not fire ErrInjected", i)
		}
	}
	r.Disarm("p")
	if err := r.Hit("p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestDelayOnly(t *testing.T) {
	r := New()
	r.Arm("p", Fault{Delay: 10 * time.Millisecond, DelayOnly: true})
	start := time.Now()
	if err := r.Hit("p"); err != nil {
		t.Fatalf("delay-only fired an error: %v", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("delay-only did not delay")
	}
}

func TestRearmResetsCounters(t *testing.T) {
	r := New()
	r.Arm("p", Fault{Count: 1})
	_ = r.Hit("p")
	r.Arm("p", Fault{Count: 1})
	if err := r.Hit("p"); err == nil {
		t.Fatal("re-armed schedule did not fire")
	}
}

func TestConcurrentHits(t *testing.T) {
	r := New()
	r.Arm("p", Fault{Count: 10})
	var wg sync.WaitGroup
	fired := make(chan struct{}, 100)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if r.Hit("p") != nil {
					fired <- struct{}{}
				}
			}
		}()
	}
	wg.Wait()
	if len(fired) != 10 {
		t.Fatalf("fired %d times, want exactly 10", len(fired))
	}
	if r.Hits("p") != 100 {
		t.Fatalf("hits = %d, want 100", r.Hits("p"))
	}
}

func TestParseSpec(t *testing.T) {
	name, f, err := ParseSpec("repl.stream.send:after=5,count=1,delay=10ms,err=partition")
	if err != nil {
		t.Fatal(err)
	}
	if name != "repl.stream.send" || f.After != 5 || f.Count != 1 || f.Delay != 10*time.Millisecond || f.Err == nil || f.Err.Error() != "partition" {
		t.Fatalf("parsed %q %+v", name, f)
	}
	if name, f, err = ParseSpec("wal.append.sync"); err != nil || name != "wal.append.sync" || f.Count != 0 {
		t.Fatalf("bare spec: %q %+v %v", name, f, err)
	}
	if _, _, err = ParseSpec(""); err == nil {
		t.Fatal("empty spec parsed")
	}
	if _, _, err = ParseSpec("p:bogus=1"); err == nil {
		t.Fatal("unknown key parsed")
	}
	if _, _, err = ParseSpec("p:after=x"); err == nil {
		t.Fatal("bad int parsed")
	}
}
