// Package fault is the shared fault-injection registry behind the
// replication chaos harness. Components on the durability and
// replication paths consult named fault points at the moments a real
// deployment fails — the WAL before a write and before an fsync, the
// primary before sending a stream frame, the follower before dialing
// and around every stream read — and a test (or the idlogd -chaos
// flag) arms those points with deterministic failure schedules:
// "fail the 3rd hit", "fail the next 2 hits with ENOSPC", "delay 50ms
// then fail every hit until disarmed".
//
// A fault point that is not armed costs one mutex acquisition and a
// map lookup on a registry that is usually nil-checked away entirely,
// so production paths pay nothing when chaos is off.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Well-known fault points. Components hit these by name; tests and the
// idlogd -chaos flag arm them. The set is open — any string works —
// but sharing the constants keeps the chaos harness and the hit sites
// in sync.
const (
	// WALAppendWrite fires inside wal.Log.Append before the entry is
	// written: a torn prefix reaches the file and the write errors, as
	// ENOSPC mid-write would.
	WALAppendWrite = "wal.append.write"
	// WALAppendSync fires after the entry is written but before the
	// fsync is acknowledged: the entry may be on disk, but durability
	// was never promised (fsync returned an error).
	WALAppendSync = "wal.append.sync"
	// ReplStreamSend fires on the primary before each stream frame is
	// sent: the connection drops mid-stream, possibly tearing a frame.
	ReplStreamSend = "repl.stream.send"
	// ReplStreamDelay fires on the primary before each frame with a
	// Delay armed: a slow or stalled primary.
	ReplStreamDelay = "repl.stream.delay"
	// ReplicaConnect fires on the follower before dialing the primary:
	// a network partition from the follower's side.
	ReplicaConnect = "replica.connect"
	// ReplicaStreamRead fires on the follower around each stream read:
	// the connection dies mid-entry (partition during catch-up).
	ReplicaStreamRead = "replica.stream.read"
	// ReplicaApply fires on the follower before applying a replicated
	// entry: a poisoned apply (the entry is NOT consumed).
	ReplicaApply = "replica.apply"
)

// Fault is one armed failure schedule on a point.
type Fault struct {
	// After skips this many hits before the fault starts firing.
	After int
	// Count fires the fault this many times once started; 0 means
	// fire on every hit until disarmed.
	Count int
	// Err is returned by Hit when the fault fires. Nil fires with
	// ErrInjected.
	Err error
	// Delay is slept before every firing hit (slow/stalled component).
	// A Delay with a nil Err and Count 0 models pure slowness.
	DelayOnly bool
	Delay     time.Duration
}

// ErrInjected is the default error returned by a firing fault.
var ErrInjected = errors.New("fault: injected failure")

type point struct {
	fault Fault
	hits  int // total hits observed while armed
	fired int // times the fault has fired
}

// Registry holds named fault points. The zero value is NOT usable;
// call New. A nil *Registry is safe to hit (never fires), so
// components take an optional registry without nil checks at every
// site.
type Registry struct {
	mu     sync.Mutex
	points map[string]*point
	hits   map[string]int // hit counts survive disarm, for assertions
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{points: map[string]*point{}, hits: map[string]int{}}
}

// Arm installs f on the named point, replacing any previous schedule
// and resetting its counters.
func (r *Registry) Arm(name string, f Fault) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points[name] = &point{fault: f}
}

// Disarm removes the named point's schedule.
func (r *Registry) Disarm(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.points, name)
}

// DisarmAll removes every schedule (chaos-test cleanup between
// phases).
func (r *Registry) DisarmAll() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points = map[string]*point{}
}

// Hit consults the named point: nil when the point is unarmed or the
// schedule does not fire on this hit, the armed error when it does.
// Delay-only schedules sleep and return nil. Safe on a nil registry.
func (r *Registry) Hit(name string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.hits != nil {
		r.hits[name]++
	}
	p, ok := r.points[name]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	p.hits++
	if p.hits <= p.fault.After {
		r.mu.Unlock()
		return nil
	}
	if p.fault.Count > 0 && p.fired >= p.fault.Count {
		r.mu.Unlock()
		return nil
	}
	p.fired++
	f := p.fault
	r.mu.Unlock()

	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.DelayOnly {
		return nil
	}
	if f.Err != nil {
		return fmt.Errorf("fault %s: %w", name, f.Err)
	}
	return fmt.Errorf("fault %s: %w", name, ErrInjected)
}

// Hits reports how many times the named point has been consulted since
// the registry was created (armed or not).
func (r *Registry) Hits(name string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits[name]
}

// Fired reports how many times the named point's current schedule has
// fired (0 when unarmed).
func (r *Registry) Fired(name string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.points[name]; ok {
		return p.fired
	}
	return 0
}

// Armed lists the currently armed point names, sorted.
func (r *Registry) Armed() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.points))
	for n := range r.points {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseSpec parses one idlogd -chaos specification of the form
//
//	point[:key=value[,key=value...]]
//
// with keys after=N, count=N, delay=DURATION, err=TEXT, delayonly.
// "repl.stream.send:after=5,count=1" partitions the stream once after
// five frames; "wal.append.sync:err=enospc" fails every fsync.
func ParseSpec(spec string) (name string, f Fault, err error) {
	name, opts, _ := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", Fault{}, fmt.Errorf("fault spec %q: empty point name", spec)
	}
	if opts == "" {
		return name, f, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		k, v, _ := strings.Cut(kv, "=")
		switch strings.TrimSpace(k) {
		case "after":
			if f.After, err = strconv.Atoi(v); err != nil {
				return "", Fault{}, fmt.Errorf("fault spec %q: bad after: %v", spec, err)
			}
		case "count":
			if f.Count, err = strconv.Atoi(v); err != nil {
				return "", Fault{}, fmt.Errorf("fault spec %q: bad count: %v", spec, err)
			}
		case "delay":
			if f.Delay, err = time.ParseDuration(v); err != nil {
				return "", Fault{}, fmt.Errorf("fault spec %q: bad delay: %v", spec, err)
			}
		case "err":
			f.Err = errors.New(v)
		case "delayonly":
			f.DelayOnly = true
		default:
			return "", Fault{}, fmt.Errorf("fault spec %q: unknown key %q", spec, k)
		}
	}
	return name, f, nil
}
