// Package analysis performs the static checks and planning that precede
// evaluation of an IDLOG program:
//
//   - predicate signature consistency (one arity per predicate name);
//   - classification into input (EDB) and output (IDB) predicates (§3.1);
//   - safety: every clause must admit a body ordering in which head
//     variables become bound, negated literals are fully bound, and each
//     arithmetic literal is invoked with an admissible binding pattern
//     (the paper's sufficient safety condition, §2.2);
//   - stratification: negation and ID-literals over IDB predicates are
//     non-monotonic dependencies and must not occur inside a recursive
//     component (the ID-relation of p is only defined once p is fully
//     computed; see DESIGN.md §2).
//
// The result is an evaluation plan: strata in dependency order, each with
// its reordered clauses and the ID-relations it must materialize.
package analysis

import (
	"fmt"
	"sort"

	"idlog/internal/arith"
	"idlog/internal/ast"
)

// Error is an analysis error, annotated with the clause it concerns.
type Error struct {
	Clause *ast.Clause // nil for program-level errors
	Msg    string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Clause == nil {
		return "analysis: " + e.Msg
	}
	return fmt.Sprintf("analysis: clause %q: %s", e.Clause.String(), e.Msg)
}

func errf(c *ast.Clause, format string, args ...any) *Error {
	return &Error{Clause: c, Msg: fmt.Sprintf(format, args...)}
}

// IDNeed identifies one ID-relation a stratum must materialize: the base
// predicate and the (canonicalized, 0-based) grouping columns. Bound is
// the tid-pruning bound of the paper's footnote 6: when positive, every
// literal over this ID-relation provably constrains the tid below Bound
// (e.g. "..., T), T < 2" or a constant tid), so only tuples with
// tid < Bound need to be materialized. Zero means unbounded (full
// materialization). Bound does not participate in Key: all uses of one
// ID-relation share a single materialization.
type IDNeed struct {
	Pred  string
	Group []int
	Bound int
}

// Key returns a canonical string for deduplication.
func (n IDNeed) Key() string {
	s := n.Pred + "["
	for i, g := range n.Group {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", g)
	}
	return s + "]"
}

// OrderedClause is a clause with its body reordered into a safe
// evaluation order.
type OrderedClause struct {
	// Clause has the body in evaluation order.
	Clause *ast.Clause
	// Source is the clause as written (for diagnostics).
	Source *ast.Clause
	// Recursive reports whether some body literal references a predicate
	// in the same stratum as the head.
	Recursive bool
}

// Stratum groups the IDB predicates evaluated together, in dependency
// order.
type Stratum struct {
	// Preds are the predicates defined in this stratum, sorted.
	Preds []string
	// Clauses are every clause whose head predicate is in Preds.
	Clauses []*OrderedClause
	// IDNeeds lists the ID-relations that clause bodies of this stratum
	// reference, deduplicated and sorted by Key.
	IDNeeds []IDNeed
	// Recursive reports whether any clause of the stratum is recursive.
	// Non-recursive strata reach fixpoint in a single seed round, so
	// evaluators (sequential and parallel alike) skip the delta-round
	// scheduling — no delta sinks, no round loop — for them.
	Recursive bool
}

// Info is the analysis result.
type Info struct {
	// Program is the analyzed program (with anonymous variables
	// freshened and ID groups canonicalized; clause bodies unmodified
	// otherwise — the ordered bodies live in Strata).
	Program *ast.Program
	// Arity maps every predicate name to its base arity.
	Arity map[string]int
	// EDB is the set of input predicate names.
	EDB map[string]bool
	// IDB is the set of predicates appearing in clause heads.
	IDB map[string]bool
	// Strata is the evaluation plan in dependency order.
	Strata []*Stratum
	// StratumOf maps each IDB predicate to its stratum index.
	StratumOf map[string]int
}

// Analyze checks prog and builds its evaluation plan. Programs containing
// choice literals are rejected here: translate them first with the choice
// package (the engine evaluates pure IDLOG).
func Analyze(prog *ast.Program) (*Info, error) {
	p := normalize(prog)
	info := &Info{
		Program:   p,
		Arity:     map[string]int{},
		EDB:       map[string]bool{},
		IDB:       map[string]bool{},
		StratumOf: map[string]int{},
	}
	if err := info.collectSignatures(); err != nil {
		return nil, err
	}
	if err := info.stratify(); err != nil {
		return nil, err
	}
	if err := info.planClauses(); err != nil {
		return nil, err
	}
	return info, nil
}

// normalize clones the program, freshens anonymous variables and
// canonicalizes ID grouping column lists (sorted, deduplicated).
func normalize(prog *ast.Program) *ast.Program {
	out := &ast.Program{}
	counter := 0
	for _, c := range prog.Clauses {
		nc := ast.FreshAnonCounter(c, &counter)
		for _, l := range nc.Body {
			if l.Atom != nil && l.Atom.IsID {
				l.Atom.Group = canonGroup(l.Atom.Group)
			}
		}
		out.Clauses = append(out.Clauses, nc)
	}
	return out
}

func canonGroup(g []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range g {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	if out == nil {
		out = []int{}
	}
	return out
}

func (info *Info) collectSignatures() error {
	checkArity := func(c *ast.Clause, pred string, arity int) error {
		if prev, ok := info.Arity[pred]; ok && prev != arity {
			return errf(c, "predicate %s used with arities %d and %d", pred, prev, arity)
		}
		info.Arity[pred] = arity
		return nil
	}
	for _, c := range info.Program.Clauses {
		if arith.IsBuiltin(c.Head.Pred) {
			return errf(c, "clause head may not be the interpreted predicate %s", c.Head.Pred)
		}
		if c.Head.IsID {
			return errf(c, "clause head may not be an ID-atom")
		}
		if err := checkArity(c, c.Head.Pred, len(c.Head.Args)); err != nil {
			return err
		}
		info.IDB[c.Head.Pred] = true
		for _, l := range c.Body {
			if l.IsChoice() {
				return errf(c, "choice literal in pure IDLOG program; translate with the choice package first")
			}
			a := l.Atom
			if arith.IsBuiltin(a.Pred) {
				if a.IsID {
					return errf(c, "interpreted predicate %s has no ID-version", a.Pred)
				}
				b, _ := arith.Lookup(a.Pred)
				if len(a.Args) != b.Arity {
					return errf(c, "interpreted predicate %s expects %d arguments, got %d", a.Pred, b.Arity, len(a.Args))
				}
				continue
			}
			if err := checkArity(c, a.Pred, a.BaseArity()); err != nil {
				return err
			}
			if a.IsID {
				if len(a.Args) == 0 {
					return errf(c, "ID-atom %s[..] needs at least the tuple-identifier argument", a.Pred)
				}
				for _, g := range a.Group {
					if g < 0 || g >= a.BaseArity() {
						return errf(c, "grouping position %d out of range for %s/%d", g+1, a.Pred, a.BaseArity())
					}
				}
			}
		}
	}
	// EDB = body predicates never defined by a clause head.
	for _, c := range info.Program.Clauses {
		for _, l := range c.Body {
			a := l.Atom
			if a == nil || arith.IsBuiltin(a.Pred) {
				continue
			}
			if !info.IDB[a.Pred] {
				info.EDB[a.Pred] = true
			}
		}
	}
	return nil
}

// depEdge is a dependency of head predicate To on body predicate From.
type depEdge struct {
	From, To string
	// NonMono marks negated literals and ID-literals: To's stratum must
	// strictly exceed From's.
	NonMono bool
}

func (info *Info) dependencyEdges() []depEdge {
	var edges []depEdge
	for _, c := range info.Program.Clauses {
		for _, l := range c.Body {
			a := l.Atom
			if a == nil || arith.IsBuiltin(a.Pred) {
				continue
			}
			if !info.IDB[a.Pred] {
				continue // EDB facts are fixed; no constraint
			}
			edges = append(edges, depEdge{
				From:    a.Pred,
				To:      c.Head.Pred,
				NonMono: l.Neg || a.IsID,
			})
		}
	}
	return edges
}

func (info *Info) stratify() error {
	preds := make([]string, 0, len(info.IDB))
	for p := range info.IDB {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	edges := info.dependencyEdges()

	comp := sccs(preds, edges)
	compOf := map[string]int{}
	for i, c := range comp {
		for _, p := range c {
			compOf[p] = i
		}
	}
	// Reject non-monotonic edges inside a component.
	for _, e := range edges {
		if e.NonMono && compOf[e.From] == compOf[e.To] {
			kind := "negation"
			if len(comp[compOf[e.From]]) >= 1 {
				// Distinguish the ID case in the message when possible.
				kind = "negation or ID-literal"
			}
			return &Error{Msg: fmt.Sprintf("program is not stratified: %s cycle through %s and %s", kind, e.From, e.To)}
		}
	}
	// Longest-path stratum numbers over the component DAG.
	strata := make([]int, len(comp))
	changed := true
	for iter := 0; changed; iter++ {
		if iter > len(comp)+1 {
			return &Error{Msg: "internal: stratification did not converge"}
		}
		changed = false
		for _, e := range edges {
			from, to := compOf[e.From], compOf[e.To]
			need := strata[from]
			if e.NonMono {
				need++
			}
			if strata[to] < need {
				strata[to] = need
				changed = true
			}
		}
	}
	maxStratum := 0
	for _, s := range strata {
		if s > maxStratum {
			maxStratum = s
		}
	}
	info.Strata = make([]*Stratum, maxStratum+1)
	for i := range info.Strata {
		info.Strata[i] = &Stratum{}
	}
	for i, c := range comp {
		s := strata[i]
		info.Strata[s].Preds = append(info.Strata[s].Preds, c...)
		for _, p := range c {
			info.StratumOf[p] = s
		}
	}
	// Drop empty strata (possible when numbering leaves gaps).
	var packed []*Stratum
	for _, s := range info.Strata {
		if len(s.Preds) > 0 {
			sort.Strings(s.Preds)
			packed = append(packed, s)
		}
	}
	info.Strata = packed
	for i, s := range info.Strata {
		for _, p := range s.Preds {
			info.StratumOf[p] = i
		}
	}
	return nil
}

func (info *Info) planClauses() error {
	for _, c := range info.Program.Clauses {
		oc, err := info.orderClause(c)
		if err != nil {
			return err
		}
		s := info.Strata[info.StratumOf[c.Head.Pred]]
		s.Clauses = append(s.Clauses, oc)
		if oc.Recursive {
			s.Recursive = true
		}
	}
	// Compute the global tid-pruning bound per ID-relation (footnote 6):
	// the bound must hold for EVERY occurrence across the whole program,
	// since one materialization serves all strata.
	bounds := map[string]int{}
	for _, c := range info.Program.Clauses {
		for _, l := range c.Body {
			a := l.Atom
			if a == nil || !a.IsID {
				continue
			}
			key := IDNeed{Pred: a.Pred, Group: a.Group}.Key()
			b := tidBound(c, a)
			prev, seen := bounds[key]
			switch {
			case !seen:
				bounds[key] = b
			case prev == 0 || b == 0:
				bounds[key] = 0
			case b > prev:
				bounds[key] = b
			}
		}
	}
	// Collect ID-needs per stratum and check availability: an ID-literal
	// over predicate p may only occur in a stratum strictly above p's
	// (or over an EDB predicate, available from stratum 0 on).
	for si, s := range info.Strata {
		needs := map[string]IDNeed{}
		for _, oc := range s.Clauses {
			for _, l := range oc.Clause.Body {
				a := l.Atom
				if a == nil || !a.IsID {
					continue
				}
				if info.IDB[a.Pred] && info.StratumOf[a.Pred] >= si {
					return errf(oc.Source, "ID-literal %s used in the stratum computing %s", a.String(), a.Pred)
				}
				n := IDNeed{Pred: a.Pred, Group: a.Group}
				n.Bound = bounds[n.Key()]
				needs[n.Key()] = n
			}
		}
		keys := make([]string, 0, len(needs))
		for k := range needs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s.IDNeeds = append(s.IDNeeds, needs[k])
		}
	}
	return nil
}

// maxTidBound caps pruning bounds so huge constants degrade to full
// materialization instead of overflowing.
const maxTidBound = 1 << 30

// tidBound derives the static tid bound of one ID-literal occurrence:
// c+1 for a constant tid c, or the tightest clause-level comparison
// constraint on the tid variable (T < c, T <= c, T = c, c > T, c >= T).
// Zero means no bound could be established.
func tidBound(c *ast.Clause, a *ast.Atom) int {
	if len(a.Args) == 0 {
		return 0
	}
	switch tid := a.Args[len(a.Args)-1].(type) {
	case ast.Const:
		if tid.Val.IsInt() && tid.Val.Num >= 0 && tid.Val.Num < maxTidBound {
			return int(tid.Val.Num) + 1
		}
	case ast.Var:
		best := 0
		for _, l := range c.Body {
			if l.Neg || l.Atom == nil {
				continue
			}
			if b := comparisonBound(l.Atom, tid.Name); b > 0 && (best == 0 || b < best) {
				best = b
			}
		}
		return best
	}
	return 0
}

// comparisonBound extracts an exclusive upper bound on varName from a
// single comparison literal, or 0.
func comparisonBound(a *ast.Atom, varName string) int {
	if len(a.Args) != 2 {
		return 0
	}
	isVar := func(i int) bool {
		v, ok := a.Args[i].(ast.Var)
		return ok && v.Name == varName
	}
	constAt := func(i int) (int64, bool) {
		cst, ok := a.Args[i].(ast.Const)
		if !ok || !cst.Val.IsInt() || cst.Val.Num < 0 || cst.Val.Num >= maxTidBound {
			return 0, false
		}
		return cst.Val.Num, true
	}
	switch a.Pred {
	case "lt": // T < c
		if isVar(0) {
			if c, ok := constAt(1); ok {
				return int(c)
			}
		}
	case "le": // T <= c
		if isVar(0) {
			if c, ok := constAt(1); ok {
				return int(c) + 1
			}
		}
	case "gt": // c > T
		if isVar(1) {
			if c, ok := constAt(0); ok {
				return int(c)
			}
		}
	case "ge": // c >= T
		if isVar(1) {
			if c, ok := constAt(0); ok {
				return int(c) + 1
			}
		}
	case "eq": // T = c  or  c = T
		if isVar(0) {
			if c, ok := constAt(1); ok {
				return int(c) + 1
			}
		}
		if isVar(1) {
			if c, ok := constAt(0); ok {
				return int(c) + 1
			}
		}
	}
	return 0
}
