package analysis

// sccs computes the strongly connected components of the dependency graph
// using Tarjan's algorithm (iterative form, safe for deep programs).
// Components are returned in reverse topological order of the condensation
// (callees before callers), which suits stratum numbering.
func sccs(nodes []string, edges []depEdge) [][]string {
	adj := map[string][]string{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	counter := 0

	type frame struct {
		node string
		next int
	}
	for _, start := range nodes {
		if _, seen := index[start]; seen {
			continue
		}
		var call []frame
		call = append(call, frame{node: start})
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			succs := adj[f.node]
			if f.next < len(succs) {
				w := succs[f.next]
				f.next++
				if _, seen := index[w]; !seen {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{node: w})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			// Post-order: pop and propagate lowlink.
			v := f.node
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].node
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}
