package analysis

import "idlog/internal/ast"

// Exported eligibility primitives for the cost-based join planner (which
// lives in internal/core, where runtime cardinalities are visible). They
// expose exactly the safety rules orderClause enforces, so any order the
// planner produces through them is as safe as the analysis order:
//
//   - positive relational (ordinary or ID) literals are always eligible;
//   - interpreted literals require an admissible binding pattern;
//   - negated literals require every variable bound.
//
// Every admissible-pattern set of the arithmetic built-ins is upward
// closed (binding more arguments never invalidates a pattern), so a
// greedy planner that picks ANY eligible literal at each step completes
// whenever orderClause found a safe order at all.

// Eligible reports whether l may be evaluated next given the currently
// bound variables.
func Eligible(l *ast.Literal, bound map[string]bool) bool {
	ok, _ := eligible(l, bound)
	return ok
}

// BoundCount returns the number of argument positions of l that are
// constants or currently-bound variables.
func BoundCount(l *ast.Literal, bound map[string]bool) int {
	_, score := eligible(l, bound)
	return score
}

// Bind records into bound the variables that evaluating l binds
// (positive literals bind all their variables; negated ones bind none).
func Bind(l *ast.Literal, bound map[string]bool) {
	bindLiteral(l, bound)
}
