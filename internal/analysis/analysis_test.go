package analysis

import (
	"strings"
	"testing"

	"idlog/internal/ast"
	"idlog/internal/parser"
)

func analyze(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := parser.Program(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := parser.Program(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Analyze(prog)
	if err == nil {
		t.Fatalf("expected analysis error for %q", src)
	}
	return err
}

func TestEDBAndIDBClassification(t *testing.T) {
	info := analyze(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	if !info.EDB["e"] || info.EDB["tc"] {
		t.Fatalf("EDB = %v", info.EDB)
	}
	if !info.IDB["tc"] || info.IDB["e"] {
		t.Fatalf("IDB = %v", info.IDB)
	}
	if info.Arity["tc"] != 2 || info.Arity["e"] != 2 {
		t.Fatalf("arity = %v", info.Arity)
	}
}

func TestSingleStratumRecursion(t *testing.T) {
	info := analyze(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	if len(info.Strata) != 1 {
		t.Fatalf("strata = %d, want 1", len(info.Strata))
	}
	s := info.Strata[0]
	if len(s.Clauses) != 2 {
		t.Fatalf("stratum clauses = %d", len(s.Clauses))
	}
	rec := 0
	for _, oc := range s.Clauses {
		if oc.Recursive {
			rec++
		}
	}
	if rec != 1 {
		t.Fatalf("recursive clause count = %d, want 1", rec)
	}
}

func TestNegationForcesNewStratum(t *testing.T) {
	info := analyze(t, `
		reach(X) :- source(X).
		reach(Y) :- reach(X), e(X, Y).
		unreach(X) :- node(X), not reach(X).
	`)
	if len(info.Strata) != 2 {
		t.Fatalf("strata = %d, want 2", len(info.Strata))
	}
	if info.StratumOf["reach"] != 0 || info.StratumOf["unreach"] != 1 {
		t.Fatalf("StratumOf = %v", info.StratumOf)
	}
}

func TestUnstratifiedNegationRejected(t *testing.T) {
	err := analyzeErr(t, `
		win(X) :- move(X, Y), not win(Y).
	`)
	if !strings.Contains(err.Error(), "not stratified") {
		t.Fatalf("error = %v", err)
	}
}

func TestIDLiteralOverIDBForcesStratum(t *testing.T) {
	// Example 2 of the paper: sex_guess is derived, man uses its
	// ID-version, so man must sit strictly above sex_guess.
	info := analyze(t, `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
		woman(X) :- sex_guess[1](X, female, 1).
	`)
	if info.StratumOf["man"] <= info.StratumOf["sex_guess"] {
		t.Fatalf("man stratum %d not above sex_guess stratum %d",
			info.StratumOf["man"], info.StratumOf["sex_guess"])
	}
	// The ID-need is recorded on man's stratum.
	s := info.Strata[info.StratumOf["man"]]
	if len(s.IDNeeds) != 1 || s.IDNeeds[0].Pred != "sex_guess" {
		t.Fatalf("IDNeeds = %v", s.IDNeeds)
	}
}

func TestIDRecursionRejected(t *testing.T) {
	err := analyzeErr(t, `
		p(X) :- p[](X, T), T = 0.
	`)
	if !strings.Contains(err.Error(), "not stratified") {
		t.Fatalf("error = %v", err)
	}
}

func TestMutualIDRecursionRejected(t *testing.T) {
	analyzeErr(t, `
		p(X) :- q(X).
		q(X) :- p[1](X, 0).
	`)
}

func TestIDOverEDBAllowedInStratumZero(t *testing.T) {
	info := analyze(t, `
		select_two(N) :- emp[2](N, D, T), T < 2.
	`)
	if len(info.Strata) != 1 {
		t.Fatalf("strata = %d", len(info.Strata))
	}
	needs := info.Strata[0].IDNeeds
	if len(needs) != 1 || needs[0].Pred != "emp" || len(needs[0].Group) != 1 || needs[0].Group[0] != 1 {
		t.Fatalf("IDNeeds = %+v", needs)
	}
}

func TestArityConflictRejected(t *testing.T) {
	analyzeErr(t, `
		p(X) :- q(X).
		p(X, Y) :- q(X), q(Y).
	`)
	// Conflict between ordinary and ID-use arity.
	analyzeErr(t, `
		a(X) :- q(X, Y).
		b(X) :- q[1](X, T).
	`)
}

func TestBuiltinHeadRejected(t *testing.T) {
	analyzeErr(t, "add(X, Y, Z) :- p(X, Y, Z).")
}

func TestBuiltinArityChecked(t *testing.T) {
	analyzeErr(t, "p(X) :- q(X), succ(X).")
}

func TestChoiceRejectedInPureIDLOG(t *testing.T) {
	err := analyzeErr(t, "p(X) :- q(X, Y), choice((X), (Y)).")
	if !strings.Contains(err.Error(), "choice") {
		t.Fatalf("error = %v", err)
	}
}

func TestUnsafeHeadVariable(t *testing.T) {
	err := analyzeErr(t, "p(X, Y) :- q(X).")
	if !strings.Contains(err.Error(), "head variable") {
		t.Fatalf("error = %v", err)
	}
}

func TestUnsafeNegationOnlyVariable(t *testing.T) {
	analyzeErr(t, "p(X) :- q(X), not r(Y).")
}

func TestUnsafeArithmetic(t *testing.T) {
	// The paper's p1 example: q(X,N), add(N,L,M) — 1+L=M style, pattern
	// bnn, unsafe.
	err := analyzeErr(t, "p1(X, N) :- q(X, N), add(N, L, M).")
	if !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("error = %v", err)
	}
}

func TestSafeArithmeticReordered(t *testing.T) {
	// The paper's p2 example: add(L,M,N) with N bound from q is safe
	// (nnb). Also the comparison appears before its variable is bound in
	// source order; the planner must move it after emp[2].
	info := analyze(t, `
		p2(X, N) :- q(X, N), add(L, M, N).
		sel(N) :- T < 2, emp[2](N, D, T).
	`)
	sel := info.Strata[info.StratumOf["sel"]]
	for _, oc := range sel.Clauses {
		if oc.Clause.Head.Pred != "sel" {
			continue
		}
		if oc.Clause.Body[0].Atom.Pred != "emp" {
			t.Fatalf("comparison not reordered: %v", oc.Clause)
		}
	}
}

func TestNegatedBuiltinRequiresAllBound(t *testing.T) {
	analyze(t, "p(X) :- q(X, Y), not lt(X, Y).")
	analyzeErr(t, "p(X) :- q(X), not lt(X, Y).")
}

func TestAnonymousVariablesAreIndependent(t *testing.T) {
	// _ in two positions must not join: after freshening the clause is
	// safe and the two positions are distinct variables.
	info := analyze(t, "p(X) :- q(X, _, _).")
	oc := info.Strata[0].Clauses[0]
	args := oc.Clause.Body[0].Atom.Args
	v1 := args[1].(ast.Var).Name
	v2 := args[2].(ast.Var).Name
	if v1 == v2 || v1 == "_" {
		t.Fatalf("anonymous variables not freshened: %s %s", v1, v2)
	}
}

func TestGroupCanonicalization(t *testing.T) {
	info := analyze(t, "p(X) :- q[2,1,2](X, Y, T).")
	needs := info.Strata[0].IDNeeds
	if len(needs) != 1 || len(needs[0].Group) != 2 || needs[0].Group[0] != 0 || needs[0].Group[1] != 1 {
		t.Fatalf("canonicalized group = %+v", needs)
	}
}

func TestLongChainStrata(t *testing.T) {
	info := analyze(t, `
		p1(X) :- base(X).
		p2(X) :- base(X), not p1(X).
		p3(X) :- base(X), not p2(X).
		p4(X) :- base(X), not p3(X).
	`)
	if len(info.Strata) != 4 {
		t.Fatalf("strata = %d, want 4", len(info.Strata))
	}
	for i := 1; i <= 4; i++ {
		name := string(rune('p')) + string(rune('0'+i))
		if info.StratumOf[name] != i-1 {
			t.Fatalf("stratum of %s = %d", name, info.StratumOf[name])
		}
	}
}

func TestFactsOnlyProgram(t *testing.T) {
	info := analyze(t, "emp(joe, toys).\nemp(sue, shoes).")
	if len(info.Strata) != 1 || len(info.Strata[0].Clauses) != 2 {
		t.Fatalf("strata = %+v", info.Strata)
	}
	if !info.IDB["emp"] {
		t.Fatalf("fact predicate should be IDB")
	}
}

func TestErrorIncludesClause(t *testing.T) {
	err := analyzeErr(t, "p(X, Y) :- q(X).")
	if !strings.Contains(err.Error(), "p(X, Y)") {
		t.Fatalf("error %q does not cite the clause", err)
	}
}

func TestNegatedIDLiteralAllowed(t *testing.T) {
	info := analyze(t, `
		first(X) :- e(X, D), e[2](X, D, 0).
		rest(X) :- e(X, D), not e[2](X, D, 0).
	`)
	if len(info.Strata) != 1 {
		t.Fatalf("strata = %d", len(info.Strata))
	}
}

func TestSCCHandlesDeepChains(t *testing.T) {
	// A 200-deep positive chain must stratify into a single stratum
	// without blowing the stack (iterative Tarjan).
	var b strings.Builder
	b.WriteString("p0(X) :- base(X).\n")
	for i := 1; i < 200; i++ {
		b.WriteString("p")
		b.WriteString(itoa(i))
		b.WriteString("(X) :- p")
		b.WriteString(itoa(i - 1))
		b.WriteString("(X).\n")
	}
	info := analyze(t, b.String())
	if len(info.Strata) != 1 {
		t.Fatalf("strata = %d, want 1", len(info.Strata))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestTidBoundConstant(t *testing.T) {
	info := analyze(t, "first(N) :- emp[2](N, D, 0).")
	needs := info.Strata[0].IDNeeds
	if len(needs) != 1 || needs[0].Bound != 1 {
		t.Fatalf("needs = %+v, want Bound 1", needs)
	}
}

func TestTidBoundComparisons(t *testing.T) {
	cases := map[string]int{
		"s(N) :- emp[2](N, D, T), T < 2.":        2,
		"s(N) :- emp[2](N, D, T), T <= 2.":       3,
		"s(N) :- emp[2](N, D, T), T = 3.":        4,
		"s(N) :- emp[2](N, D, T), 5 > T.":        5,
		"s(N) :- emp[2](N, D, T), 5 >= T.":       6,
		"s(N, T) :- emp[2](N, D, T).":            0,
		"s(N) :- emp[2](N, D, T), T > 1.":        0, // lower bound: no prune
		"s(N) :- emp[2](N, D, T), T < 9, T < 4.": 4,
	}
	for src, want := range cases {
		info := analyze(t, src)
		needs := info.Strata[0].IDNeeds
		if len(needs) != 1 || needs[0].Bound != want {
			t.Errorf("%q: needs = %+v, want Bound %d", src, needs, want)
		}
	}
}

func TestTidBoundMergesAcrossClauses(t *testing.T) {
	// Shared ID-relation: the bound must cover every occurrence.
	info := analyze(t, `
		a(N) :- emp[2](N, D, 0).
		b(N) :- emp[2](N, D, T), T < 3.
	`)
	needs := info.Strata[0].IDNeeds
	if len(needs) != 1 || needs[0].Bound != 3 {
		t.Fatalf("needs = %+v, want merged Bound 3", needs)
	}
	// Any unbounded occurrence forces full materialization.
	info = analyze(t, `
		a(N) :- emp[2](N, D, 0).
		b(N, T) :- emp[2](N, D, T).
	`)
	needs = info.Strata[0].IDNeeds
	if len(needs) != 1 || needs[0].Bound != 0 {
		t.Fatalf("needs = %+v, want Bound 0 (unbounded)", needs)
	}
}

func TestTidBoundNegatedComparisonIgnored(t *testing.T) {
	// "not T >= 2" does bound T, but the analyzer is conservative about
	// negated literals and must not prune.
	info := analyze(t, "s(N) :- emp(N, D), emp[2](N, D, T), not ge(T, 2).")
	needs := info.Strata[0].IDNeeds
	if len(needs) != 1 || needs[0].Bound != 0 {
		t.Fatalf("needs = %+v, want Bound 0", needs)
	}
}
