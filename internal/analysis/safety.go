package analysis

import (
	"idlog/internal/arith"
	"idlog/internal/ast"
)

// orderClause finds a safe evaluation order for the clause body and
// verifies range restriction. A literal is *eligible* when:
//
//   - it is a positive relational (ordinary or ID) literal — these are
//     always evaluable and bind their variables; or
//   - it is an interpreted literal whose current binding pattern is in
//     the predicate's admissible set (§2.2) — functional patterns bind
//     their output variables; or
//   - it is a negated literal all of whose variables are already bound.
//
// Among eligible literals the planner greedily prefers the one with the
// most bound argument positions (a simple sideways-information-passing
// heuristic that favours index probes), breaking ties by source order.
// Relational literals are preferred over interpreted/negated ones at
// equal score only via the tie-break; correctness does not depend on the
// heuristic, only on eligibility.
func (info *Info) orderClause(src *ast.Clause) (*OrderedClause, error) {
	bound := map[string]bool{}
	// Head constants contribute nothing; head variables must be bound by
	// the end.
	remaining := make([]*ast.Literal, len(src.Body))
	copy(remaining, src.Body)
	var ordered []*ast.Literal

	for len(remaining) > 0 {
		bestIdx := -1
		bestScore := -1
		for i, l := range remaining {
			ok, score := eligible(l, bound)
			if !ok {
				continue
			}
			if score > bestScore {
				bestScore = score
				bestIdx = i
			}
		}
		if bestIdx == -1 {
			return nil, errf(src, "unsafe clause: no safe evaluation order for remaining literals (check negation bindings and arithmetic binding patterns)")
		}
		l := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		ordered = append(ordered, l)
		bindLiteral(l, bound)
	}

	for _, t := range src.Head.Args {
		if v, ok := t.(ast.Var); ok && !bound[v.Name] {
			return nil, errf(src, "unsafe clause: head variable %s is not bound by the body", v.Name)
		}
	}

	oc := &OrderedClause{
		Clause: &ast.Clause{Head: src.Head, Body: ordered},
		Source: src,
	}
	headStratum := info.StratumOf[src.Head.Pred]
	for _, l := range ordered {
		a := l.Atom
		if a == nil || arith.IsBuiltin(a.Pred) || !info.IDB[a.Pred] {
			continue
		}
		if !l.Neg && !a.IsID && info.StratumOf[a.Pred] == headStratum {
			oc.Recursive = true
		}
	}
	return oc, nil
}

// eligible reports whether l can be evaluated next given the bound
// variables, along with a preference score (number of bound argument
// positions).
func eligible(l *ast.Literal, bound map[string]bool) (bool, int) {
	a := l.Atom
	score := 0
	allBound := true
	for _, t := range a.Args {
		switch t := t.(type) {
		case ast.Const:
			score++
		case ast.Var:
			if bound[t.Name] {
				score++
			} else {
				allBound = false
			}
		}
	}
	if arith.IsBuiltin(a.Pred) {
		b, _ := arith.Lookup(a.Pred)
		if l.Neg {
			// Negated interpreted literals need every argument bound so
			// the complement is decidable.
			return allBound, score
		}
		return b.Allowed(arith.Pattern(boundMask(a, bound))), score
	}
	if l.Neg {
		return allBound, score
	}
	return true, score
}

func boundMask(a *ast.Atom, bound map[string]bool) []bool {
	mask := make([]bool, len(a.Args))
	for i, t := range a.Args {
		switch t := t.(type) {
		case ast.Const:
			mask[i] = true
		case ast.Var:
			mask[i] = bound[t.Name]
		}
	}
	return mask
}

// bindLiteral records the variables bound by evaluating l. Positive
// literals (relational or interpreted) bind all their variables; negated
// literals bind nothing (they were fully bound already).
func bindLiteral(l *ast.Literal, bound map[string]bool) {
	if l.Neg {
		return
	}
	for _, t := range l.Atom.Args {
		if v, ok := t.(ast.Var); ok {
			bound[v.Name] = true
		}
	}
}
