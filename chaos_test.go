package idlog

// Chaos suite: deterministic fault injection and resource-budget
// boundary tests for the governance layer (ISSUE 1). Faults are armed
// through the unexported withFault option, so this file stays in
// package idlog.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"idlog/internal/guard"
	"idlog/internal/sampling"
)

// chainProg is the E6-style transitive-closure kernel.
func chainProg(t *testing.T) *Program {
	t.Helper()
	prog, err := Parse(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func chainDB(t *testing.T, n int) *Database {
	t.Helper()
	db := NewDatabase()
	for i := int64(0); i < int64(n); i++ {
		if err := db.Add("e", Ints(i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// stratProg has three strata: tc, then its negation, then a projection.
func stratProg(t *testing.T) *Program {
	t.Helper()
	prog, err := Parse(`
		node(X) :- e(X, Y).
		node(Y) :- e(X, Y).
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
		sep(X, Y) :- node(X), node(Y), not tc(X, Y).
		sep_from(X) :- sep(X, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// e1Prog is the paper's flagship sampling query (E1): two employees per
// department via the grouped ID-literal emp[2].
func e1Prog(t *testing.T) *Program {
	t.Helper()
	prog, err := Parse(`select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.`)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// wantCode asserts err is a typed *Error carrying code.
func wantCode(t *testing.T, err error, code ErrorCode) *Error {
	t.Helper()
	if err == nil {
		t.Fatalf("expected a %v error, got nil", code)
	}
	var ie *Error
	if !errors.As(err, &ie) {
		t.Fatalf("error %v (%T) is not a typed *idlog.Error", err, err)
	}
	if ie.Code != code {
		t.Fatalf("error code = %v, want %v (err: %v)", ie.Code, code, err)
	}
	return ie
}

// wantPartial asserts res is a well-formed partial result for err.
func wantPartial(t *testing.T, res *Result, err error) {
	t.Helper()
	if res == nil {
		t.Fatalf("tripped run returned a nil Result (err: %v)", err)
	}
	if !res.Incomplete {
		t.Fatalf("tripped run's Result not marked Incomplete (err: %v)", err)
	}
	if res.Err == nil {
		t.Fatalf("partial Result.Err is nil (err: %v)", err)
	}
}

// countIDB sums the derived tuples of prog's output predicates in res.
func countIDB(prog *Program, res *Result) int {
	n := 0
	for _, p := range prog.OutputPredicates() {
		if r := res.Relation(p); r != nil {
			n += r.Len()
		}
	}
	return n
}

// subsetOf asserts every output tuple of partial also appears in full.
func subsetOf(t *testing.T, prog *Program, partial, full *Result) {
	t.Helper()
	for _, p := range prog.OutputPredicates() {
		pr := partial.Relation(p)
		if pr == nil {
			continue
		}
		fr := full.Relation(p)
		if fr == nil {
			t.Fatalf("partial model has %s but the full model does not", p)
		}
		for _, tup := range pr.Tuples() {
			if !fr.Contains(tup) {
				t.Fatalf("partial model tuple %s%v not in the full model: not a sound prefix", p, tup)
			}
		}
	}
}

func TestChaosCanceledContext(t *testing.T) {
	prog, db := chainProg(t), chainDB(t, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := prog.EvalContext(ctx, db)
	ie := wantCode(t, err, CodeCanceled)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled-run error %v does not match errors.Is(err, context.Canceled)", err)
	}
	wantPartial(t, res, err)
	if res.CompletedStrata != 0 {
		t.Fatalf("pre-canceled run completed %d strata", res.CompletedStrata)
	}
	if ie.Op != "eval" {
		t.Fatalf("error op = %q, want eval", ie.Op)
	}
}

func TestChaosDeadline(t *testing.T) {
	prog, db := chainProg(t), chainDB(t, 50)

	// Via WithTimeout.
	res, err := prog.Eval(db, WithTimeout(time.Nanosecond))
	wantCode(t, err, CodeDeadlineExceeded)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout error %v does not match errors.Is(err, context.DeadlineExceeded)", err)
	}
	wantPartial(t, res, err)

	// Via a context deadline.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = prog.EvalContext(ctx, db)
	wantCode(t, err, CodeDeadlineExceeded)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx-deadline error %v does not match errors.Is", err)
	}
}

func TestChaosCancelAtStratum(t *testing.T) {
	prog, db := stratProg(t), chainDB(t, 10)
	full, err := prog.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	for stratum := 0; stratum < prog.Strata(); stratum++ {
		res, err := prog.Eval(db, withFault(guard.CancelAt(stratum)))
		wantCode(t, err, CodeCanceled)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stratum %d: %v does not match errors.Is(err, context.Canceled)", stratum, err)
		}
		wantPartial(t, res, err)
		if res.CompletedStrata != stratum {
			t.Fatalf("canceled at stratum %d but CompletedStrata = %d", stratum, res.CompletedStrata)
		}
		subsetOf(t, prog, res, full)
	}
	// Canceling past the last stratum never fires: the run completes.
	res, err := prog.Eval(db, withFault(guard.CancelAt(prog.Strata())))
	if err != nil || res.Incomplete {
		t.Fatalf("cancel beyond the last stratum tripped: %v", err)
	}
}

func TestChaosInjectedPanic(t *testing.T) {
	prog, db := chainProg(t), chainDB(t, 50)
	res, err := prog.Eval(db, withFault(guard.FailAfter(40)))
	ie := wantCode(t, err, CodeInternal)
	if !strings.Contains(ie.Error(), "stratum") || !strings.Contains(ie.Error(), "tc(") {
		t.Fatalf("internal error lacks stratum/clause context: %v", ie)
	}
	wantPartial(t, res, err)
}

func TestChaosOracleFault(t *testing.T) {
	prog := e1Prog(t)
	db := sampling.EmployeeDB(4, 25)
	boom := errors.New("simulated oracle failure")
	res, err := prog.Eval(db, WithSeed(7), withFault(guard.OracleFault(boom)))
	wantCode(t, err, CodeInternal)
	if !errors.Is(err, boom) {
		t.Fatalf("oracle fault cause lost: %v", err)
	}
	wantPartial(t, res, err)
	if n := countIDB(prog, res); n != 0 {
		t.Fatalf("oracle failed before any derivation, yet %d tuples derived", n)
	}
}

func TestChaosQuery(t *testing.T) {
	prog, db := chainProg(t), chainDB(t, 50)

	// Satellite (a) regression: a goal with zero satisfying bindings
	// exercises the nil answer-relation branch and must not panic.
	qr, err := prog.Query(db, "tc(X, Y), eq(X, 999)")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Holds() || len(qr.Rows) != 0 {
		t.Fatalf("unsatisfiable goal reported bindings: %+v", qr)
	}

	// A canceled query returns the typed error (bindings-so-far when a
	// partial model exists).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qr, err = prog.QueryContext(ctx, db, "tc(X, Y)")
	wantCode(t, err, CodeCanceled)
	if qr != nil && len(qr.Rows) > 0 {
		full, ferr := prog.Query(db, "tc(X, Y)")
		if ferr != nil {
			t.Fatal(ferr)
		}
		if len(qr.Rows) > len(full.Rows) {
			t.Fatalf("partial query returned more rows than the full query")
		}
	}

	// Malformed goals carry CodeParseError.
	_, err = prog.Query(db, "tc(X,")
	wantCode(t, err, CodeParseError)
}

func TestChaosEnumeratePartial(t *testing.T) {
	prog, err := Parse(`pick(X) :- item[](X, T), T = 0.`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for _, it := range []string{"a", "b", "c", "d"} {
		if err := db.Add("item", Strs(it)); err != nil {
			t.Fatal(err)
		}
	}
	// The full walk finds 4 answers; a 2-run budget must surface the
	// answers found so far with the typed budget error.
	answers, err := prog.Enumerate(db, []string{"pick"}, WithMaxRuns(2))
	wantCode(t, err, CodeResourceExhausted)
	if len(answers) == 0 {
		t.Fatalf("budget-tripped enumeration discarded its partial answers")
	}
	full, err := prog.Enumerate(db, []string{"pick"})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 4 || len(answers) > len(full) {
		t.Fatalf("answers: partial %d, full %d (want full = 4)", len(answers), len(full))
	}

	// A canceled walk is typed too.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = prog.EnumerateContext(ctx, db, []string{"pick"})
	wantCode(t, err, CodeCanceled)
}

func TestChaosNoGoroutineLeak(t *testing.T) {
	prog, db := chainProg(t), chainDB(t, 30)
	e1, empDB := e1Prog(t), sampling.EmployeeDB(3, 10)
	before := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, _ = prog.EvalContext(ctx, db)
		_, _ = prog.Eval(db, WithTimeout(time.Nanosecond))
		_, _ = prog.Eval(db, WithMaxDerivations(10))
		_, _ = prog.Eval(db, withFault(guard.FailAfter(5)))
		_, _ = e1.Eval(empDB, WithSeed(uint64(i)), WithMaxTuples(32))
	}
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew from %d to %d across tripped runs", before, after)
	}
}

// TestDerivationBudgetBoundary: the budget fires at EXACTLY the
// configured limit — the partial run performs MaxDerivations
// derivations, not one more — and each partial model is a sound prefix
// of the full one. (Satellite c, E6 kernel.) Exactness at the boundary
// is a sequential-engine guarantee, so the test pins WithParallelism(1):
// the parallel ledger promises a hard ceiling (never more than the
// limit), not an exact landing — workers stop at grant boundaries and
// refund unused slack.
func TestDerivationBudgetBoundary(t *testing.T) {
	prog, db := chainProg(t), chainDB(t, 50)
	full, err := prog.Eval(db, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	totalDerivations := full.Stats.Derivations
	for _, limit := range []int{1, 2, 17, 256, 257, 1000, totalDerivations - 1} {
		res, err := prog.Eval(db, WithParallelism(1), WithMaxDerivations(limit))
		wantCode(t, err, CodeResourceExhausted)
		wantPartial(t, res, err)
		if res.Stats.Derivations != limit {
			t.Fatalf("limit %d: run performed %d derivations, want exactly the limit",
				limit, res.Stats.Derivations)
		}
		subsetOf(t, prog, res, full)
	}
	// At or above the run's true cost the budget never fires.
	for _, limit := range []int{totalDerivations, totalDerivations + 1} {
		res, err := prog.Eval(db, WithParallelism(1), WithMaxDerivations(limit))
		if err != nil || res.Incomplete {
			t.Fatalf("limit %d >= total %d still tripped: %v", limit, totalDerivations, err)
		}
	}
}

// TestTupleBudgetBoundary: a tripped run holds exactly MaxTuples
// derived tuples. (Satellite c, E6 kernel — no ID-relations, so every
// reserved tuple is a visible IDB tuple.)
func TestTupleBudgetBoundary(t *testing.T) {
	prog, db := chainProg(t), chainDB(t, 50)
	full, err := prog.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	fullTuples := countIDB(prog, full)
	for _, limit := range []int{1, 2, 64, 100, fullTuples - 1} {
		res, err := prog.Eval(db, WithMaxTuples(limit))
		wantCode(t, err, CodeResourceExhausted)
		wantPartial(t, res, err)
		if got := countIDB(prog, res); got != limit {
			t.Fatalf("limit %d: partial model holds %d tuples, want exactly the limit", limit, got)
		}
		subsetOf(t, prog, res, full)
	}
	res, err := prog.Eval(db, WithMaxTuples(fullTuples))
	if err != nil || res.Incomplete {
		t.Fatalf("limit == model size still tripped: %v", err)
	}
}

// TestTupleBudgetBoundaryE1: with an ID-literal in play the budget
// also accounts the materialized ID-relation rows (one block, whose
// size the bounded materialization of the "N < 2" literal determines),
// then meters derived tuples one by one. (Satellite c, E1 kernel.)
func TestTupleBudgetBoundaryE1(t *testing.T) {
	prog := e1Prog(t)
	db := sampling.EmployeeDB(4, 25) // 100 emp tuples, 8 sampled names
	const seed, sampled = 42, 8
	full, err := prog.Eval(db, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if n := countIDB(prog, full); n != sampled {
		t.Fatalf("full E1 run sampled %d names, want %d", n, sampled)
	}
	idRows := full.IDRelation("emp[1]").Len() // the block charged to the budget
	// Below one ID block the run cannot even materialize emp[2].
	res, err := prog.Eval(db, WithSeed(seed), WithMaxTuples(idRows-1))
	wantCode(t, err, CodeResourceExhausted)
	wantPartial(t, res, err)
	if n := countIDB(prog, res); n != 0 {
		t.Fatalf("run without an ID-relation still derived %d tuples", n)
	}
	// With the block paid for, each extra unit of budget is exactly one
	// more derived tuple in the partial model.
	for k := 0; k < sampled; k++ {
		res, err := prog.Eval(db, WithSeed(seed), WithMaxTuples(idRows+k))
		wantCode(t, err, CodeResourceExhausted)
		wantPartial(t, res, err)
		if got := countIDB(prog, res); got != k {
			t.Fatalf("budget %d+%d: partial model holds %d samples, want exactly %d", idRows, k, got, k)
		}
		subsetOf(t, prog, res, full)
	}
	res, err = prog.Eval(db, WithSeed(seed), WithMaxTuples(idRows+sampled))
	if err != nil || res.Incomplete {
		t.Fatalf("exact-fit budget still tripped: %v", err)
	}
}

// TestTimeoutBoundary: E6 under a timeout that fires mid-run returns a
// sound partial prefix. The instant of the trip is inherently
// non-deterministic, so only soundness — not the cut point — is
// asserted.
func TestTimeoutBoundary(t *testing.T) {
	prog, db := chainProg(t), chainDB(t, 120)
	full, err := prog.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []time.Duration{time.Nanosecond, 50 * time.Microsecond} {
		res, err := prog.Eval(db, WithTimeout(d))
		if err == nil {
			continue // machine fast enough to finish inside d
		}
		wantCode(t, err, CodeDeadlineExceeded)
		wantPartial(t, res, err)
		subsetOf(t, prog, res, full)
	}
}

// TestGovernedSampling: the sampling facade propagates governance and
// typed errors.
func TestGovernedSampling(t *testing.T) {
	db := sampling.EmployeeDB(10, 50)
	spec := SampleSpec{Relation: "emp", Arity: 2, GroupBy: []int{2}, K: 2}
	if _, err := Sample(spec, db, 3); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SampleContext(ctx, spec, db, 3)
	wantCode(t, err, CodeCanceled)
	_, err = SampleContext(context.Background(), spec, db, 3, WithMaxTuples(10))
	wantCode(t, err, CodeResourceExhausted)
}

// TestErrorTaxonomyRendering pins the public error surface: message
// shape, Unwrap chains, and the parse/stratification codes raised
// outside the engine loop.
func TestErrorTaxonomyRendering(t *testing.T) {
	_, err := Parse("p(X :-")
	wantCode(t, err, CodeParseError)

	_, err = Parse(`p(X) :- q(X), not p(X).  q(a).`)
	wantCode(t, err, CodeStratificationError)

	prog, db := chainProg(t), chainDB(t, 50)
	_, err = prog.Eval(db, WithMaxDerivations(3))
	ie := wantCode(t, err, CodeResourceExhausted)
	msg := ie.Error()
	for _, want := range []string{"idlog:", "eval", "resource_exhausted", "derivation budget 3"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q lacks %q", msg, want)
		}
	}
	if fmt.Sprintf("%v", ie.Code) == "" {
		t.Fatalf("ErrorCode has no string form")
	}
}
