package idlog

import (
	"fmt"
	"strings"
	"testing"
)

// TestPlannerPreservesPaperExamples is the ISSUE's end-to-end planner
// acceptance check: the paper's Examples 1–8 (7–8 derived from 6 via
// Program.Optimize, as in the paper) must produce byte-identical
// answer sets, fingerprints, and seeded sample distributions with the
// planner on and off, sequentially and with 4 workers.
func TestPlannerPreservesPaperExamples(t *testing.T) {
	db := NewDatabase()
	for i := 0; i < 6; i++ {
		_ = db.Add("person", Strs(fmt.Sprintf("p%02d", i)))
	}
	for d := 0; d < 4; d++ {
		for e := 0; e < 5; e++ {
			_ = db.Add("emp", Strs(fmt.Sprintf("e%d_%d", d, e), fmt.Sprintf("dept%d", d)))
		}
	}
	for i := 0; i < 30; i++ {
		_ = db.Add("p", Strs(fmt.Sprintf("v%03d", i), fmt.Sprintf("v%03d", i+1)))
		if i%5 == 0 {
			_ = db.Add("p", Strs(fmt.Sprintf("v%03d", i), fmt.Sprintf("w%03d", i)))
		}
	}
	db.Freeze()

	type workload struct {
		name string
		prog *Program
		opts []Option
	}
	var workloads []workload
	for _, ex := range paperExamples {
		prog := mustParse(t, ex.src)
		workloads = append(workloads, workload{ex.name, prog, nil})
		workloads = append(workloads, workload{ex.name + "-seeded", prog, []Option{WithSeed(42)}})
	}
	ex6 := mustParse(t, paperExamples[5].src)
	ex8, err := ex6.Optimize("q")
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads,
		workload{"ex7-8-optimized", ex8, nil},
		workload{"ex7-8-optimized-seeded", ex8, []Option{WithSeed(42)}})

	modelOf := func(w workload, extra ...Option) string {
		t.Helper()
		res, err := w.prog.Eval(db, append(append([]Option{}, w.opts...), extra...)...)
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		var b strings.Builder
		for _, p := range w.prog.OutputPredicates() {
			fmt.Fprintf(&b, "%s=%s\n", p, res.Relation(p).Fingerprint())
		}
		return b.String()
	}

	for _, w := range workloads {
		want := modelOf(w) // planner on, sequential: the reference
		variants := []struct {
			name  string
			extra []Option
		}{
			{"planner-off", []Option{WithPlanner(false)}},
			{"planner-on-parallel", []Option{WithParallelism(4)}},
			{"planner-off-parallel", []Option{WithPlanner(false), WithParallelism(4)}},
		}
		for _, v := range variants {
			if got := modelOf(w, v.extra...); got != want {
				t.Errorf("%s: %s model diverged from planner-on sequential\nwant:\n%s\ngot:\n%s",
					w.name, v.name, want, got)
			}
		}
	}
}
