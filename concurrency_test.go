package idlog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// concurrencyDB builds a frozen database shared by every goroutine of
// the stress tests: a branching graph for transitive closure and
// negation, and an employee table for choice/sampling.
func concurrencyDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	for i := 0; i < 30; i++ {
		_ = db.Add("e", Strs(fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", i+1)))
		if i%3 == 0 {
			_ = db.Add("e", Strs(fmt.Sprintf("n%03d", i), fmt.Sprintf("b%03d", i)))
		}
	}
	for i := 0; i <= 31; i++ {
		_ = db.Add("node", Strs(fmt.Sprintf("n%03d", i)))
	}
	_ = db.Add("start", Strs("n000"))
	for d := 0; d < 5; d++ {
		for e := 0; e < 6; e++ {
			_ = db.Add("emp", Strs(fmt.Sprintf("e%d_%d", d, e), fmt.Sprintf("dept%d", d)))
		}
	}
	db.Freeze()
	return db
}

const concurrencyTC = `
	tc(X, Y) :- e(X, Y).
	tc(X, Y) :- e(X, Z), tc(Z, Y).
`

const concurrencyNeg = `
	reach(X) :- start(X).
	reach(Y) :- reach(X), e(X, Y).
	unreached(X) :- node(X), not reach(X).
`

const concurrencyChoice = `
	pick(N, D) :- emp[2](N, D, 0).
`

// fingerprintOf evaluates and fingerprints one predicate.
func fingerprintOf(t *testing.T, p *Program, db *Database, pred string, opts ...Option) string {
	t.Helper()
	res, err := p.Eval(db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res.Relation(pred).Fingerprint()
}

// TestConcurrentEvalSharedProgram runs many goroutines over ONE
// compiled program and ONE frozen database — the idlogd sharing model —
// and checks every result is identical to the sequential baseline.
// Run with -race: it exercises the lazy-index freeze/publish path.
func TestConcurrentEvalSharedProgram(t *testing.T) {
	db := concurrencyDB(t)
	tc := mustParse(t, concurrencyTC)
	neg := mustParse(t, concurrencyNeg)
	choice := mustParse(t, concurrencyChoice)

	// Sequential baselines, computed before any concurrency.
	wantTC := fingerprintOf(t, tc, db, "tc")
	wantUnreached := fingerprintOf(t, neg, db, "unreached")
	seeds := []uint64{1, 7, 42, 1000}
	wantPick := make(map[uint64]string, len(seeds))
	for _, s := range seeds {
		wantPick[s] = fingerprintOf(t, choice, db, "pick", WithSeed(s))
	}
	goalRows := func(qr *QueryResult) string {
		parts := make([]string, len(qr.Rows))
		for i, r := range qr.Rows {
			parts[i] = r.String()
		}
		sort.Strings(parts)
		return strings.Join(parts, ";")
	}
	qr, err := tc.Query(db, "tc(n000, X)")
	if err != nil {
		t.Fatal(err)
	}
	wantGoal := goalRows(qr)

	const goroutines = 16
	const iterations = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seed := seeds[g%len(seeds)]
			for i := 0; i < iterations; i++ {
				res, err := tc.Eval(db)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: tc eval: %w", g, err)
					return
				}
				if got := res.Relation("tc").Fingerprint(); got != wantTC {
					errs <- fmt.Errorf("goroutine %d: tc fingerprint diverged", g)
					return
				}
				res, err = neg.Eval(db)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: neg eval: %w", g, err)
					return
				}
				if got := res.Relation("unreached").Fingerprint(); got != wantUnreached {
					errs <- fmt.Errorf("goroutine %d: unreached fingerprint diverged", g)
					return
				}
				res, err = choice.Eval(db, WithSeed(seed))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: choice eval: %w", g, err)
					return
				}
				if got := res.Relation("pick").Fingerprint(); got != wantPick[seed] {
					errs <- fmt.Errorf("goroutine %d: seed %d pick fingerprint diverged", g, seed)
					return
				}
				qr, err := tc.Query(db, "tc(n000, X)")
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: query: %w", g, err)
					return
				}
				if got := goalRows(qr); got != wantGoal {
					errs <- fmt.Errorf("goroutine %d: goal rows diverged", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentEnumerateSharedProgram checks that concurrent
// enumerations over the shared frozen database all see the same answer
// set as a sequential enumeration.
func TestConcurrentEnumerateSharedProgram(t *testing.T) {
	// A small employee table keeps the full answer space (3^2 = 9
	// choice combinations) well inside the run budget.
	db := NewDatabase()
	for d := 0; d < 2; d++ {
		for e := 0; e < 3; e++ {
			_ = db.Add("emp", Strs(fmt.Sprintf("e%d_%d", d, e), fmt.Sprintf("dept%d", d)))
		}
	}
	db.Freeze()
	choice := mustParse(t, concurrencyChoice)

	answerSet := func(answers []*Answer) string {
		fps := make([]string, len(answers))
		for i, a := range answers {
			fps[i] = a.Relations["pick"].Fingerprint()
		}
		sort.Strings(fps)
		return strings.Join(fps, "|")
	}
	baseline, err := choice.Enumerate(db, []string{"pick"}, WithMaxRuns(2000))
	if err != nil {
		t.Fatal(err)
	}
	want := answerSet(baseline)
	if len(baseline) == 0 {
		t.Fatal("baseline enumeration found no answers")
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			answers, err := choice.Enumerate(db, []string{"pick"}, WithMaxRuns(2000))
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: enumerate: %w", g, err)
				return
			}
			if got := answerSet(answers); got != want {
				errs <- fmt.Errorf("goroutine %d: answer set diverged (%d answers, want %d)",
					g, len(answers), len(baseline))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// mustParse compiles source or fails the test.
func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
