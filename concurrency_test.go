package idlog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// concurrencyDB builds a frozen database shared by every goroutine of
// the stress tests: a branching graph for transitive closure and
// negation, and an employee table for choice/sampling.
func concurrencyDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	for i := 0; i < 30; i++ {
		_ = db.Add("e", Strs(fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", i+1)))
		if i%3 == 0 {
			_ = db.Add("e", Strs(fmt.Sprintf("n%03d", i), fmt.Sprintf("b%03d", i)))
		}
	}
	for i := 0; i <= 31; i++ {
		_ = db.Add("node", Strs(fmt.Sprintf("n%03d", i)))
	}
	_ = db.Add("start", Strs("n000"))
	for d := 0; d < 5; d++ {
		for e := 0; e < 6; e++ {
			_ = db.Add("emp", Strs(fmt.Sprintf("e%d_%d", d, e), fmt.Sprintf("dept%d", d)))
		}
	}
	db.Freeze()
	return db
}

const concurrencyTC = `
	tc(X, Y) :- e(X, Y).
	tc(X, Y) :- e(X, Z), tc(Z, Y).
`

const concurrencyNeg = `
	reach(X) :- start(X).
	reach(Y) :- reach(X), e(X, Y).
	unreached(X) :- node(X), not reach(X).
`

const concurrencyChoice = `
	pick(N, D) :- emp[2](N, D, 0).
`

// fingerprintOf evaluates and fingerprints one predicate.
func fingerprintOf(t *testing.T, p *Program, db *Database, pred string, opts ...Option) string {
	t.Helper()
	res, err := p.Eval(db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res.Relation(pred).Fingerprint()
}

// TestConcurrentEvalSharedProgram runs many goroutines over ONE
// compiled program and ONE frozen database — the idlogd sharing model —
// and checks every result is identical to the sequential baseline.
// Run with -race: it exercises the lazy-index freeze/publish path.
func TestConcurrentEvalSharedProgram(t *testing.T) {
	db := concurrencyDB(t)
	tc := mustParse(t, concurrencyTC)
	neg := mustParse(t, concurrencyNeg)
	choice := mustParse(t, concurrencyChoice)

	// Sequential baselines, computed before any concurrency.
	wantTC := fingerprintOf(t, tc, db, "tc")
	wantUnreached := fingerprintOf(t, neg, db, "unreached")
	seeds := []uint64{1, 7, 42, 1000}
	wantPick := make(map[uint64]string, len(seeds))
	for _, s := range seeds {
		wantPick[s] = fingerprintOf(t, choice, db, "pick", WithSeed(s))
	}
	goalRows := func(qr *QueryResult) string {
		parts := make([]string, len(qr.Rows))
		for i, r := range qr.Rows {
			parts[i] = r.String()
		}
		sort.Strings(parts)
		return strings.Join(parts, ";")
	}
	qr, err := tc.Query(db, "tc(n000, X)")
	if err != nil {
		t.Fatal(err)
	}
	wantGoal := goalRows(qr)

	const goroutines = 16
	const iterations = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seed := seeds[g%len(seeds)]
			for i := 0; i < iterations; i++ {
				res, err := tc.Eval(db)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: tc eval: %w", g, err)
					return
				}
				if got := res.Relation("tc").Fingerprint(); got != wantTC {
					errs <- fmt.Errorf("goroutine %d: tc fingerprint diverged", g)
					return
				}
				res, err = neg.Eval(db)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: neg eval: %w", g, err)
					return
				}
				if got := res.Relation("unreached").Fingerprint(); got != wantUnreached {
					errs <- fmt.Errorf("goroutine %d: unreached fingerprint diverged", g)
					return
				}
				res, err = choice.Eval(db, WithSeed(seed))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: choice eval: %w", g, err)
					return
				}
				if got := res.Relation("pick").Fingerprint(); got != wantPick[seed] {
					errs <- fmt.Errorf("goroutine %d: seed %d pick fingerprint diverged", g, seed)
					return
				}
				qr, err := tc.Query(db, "tc(n000, X)")
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: query: %w", g, err)
					return
				}
				if got := goalRows(qr); got != wantGoal {
					errs <- fmt.Errorf("goroutine %d: goal rows diverged", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentEnumerateSharedProgram checks that concurrent
// enumerations over the shared frozen database all see the same answer
// set as a sequential enumeration.
func TestConcurrentEnumerateSharedProgram(t *testing.T) {
	// A small employee table keeps the full answer space (3^2 = 9
	// choice combinations) well inside the run budget.
	db := NewDatabase()
	for d := 0; d < 2; d++ {
		for e := 0; e < 3; e++ {
			_ = db.Add("emp", Strs(fmt.Sprintf("e%d_%d", d, e), fmt.Sprintf("dept%d", d)))
		}
	}
	db.Freeze()
	choice := mustParse(t, concurrencyChoice)

	answerSet := func(answers []*Answer) string {
		fps := make([]string, len(answers))
		for i, a := range answers {
			fps[i] = a.Relations["pick"].Fingerprint()
		}
		sort.Strings(fps)
		return strings.Join(fps, "|")
	}
	baseline, err := choice.Enumerate(db, []string{"pick"}, WithMaxRuns(2000))
	if err != nil {
		t.Fatal(err)
	}
	want := answerSet(baseline)
	if len(baseline) == 0 {
		t.Fatal("baseline enumeration found no answers")
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			answers, err := choice.Enumerate(db, []string{"pick"}, WithMaxRuns(2000))
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: enumerate: %w", g, err)
				return
			}
			if got := answerSet(answers); got != want {
				errs <- fmt.Errorf("goroutine %d: answer set diverged (%d answers, want %d)",
					g, len(answers), len(baseline))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// mustParse compiles source or fails the test.
func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// paperExamples are the programs of the paper's Examples 1–8 (the §4
// rewrites of Example 6 — Examples 7 and 8 — are derived below via
// Program.Optimize, exactly as the paper derives them).
var paperExamples = []struct {
	name string
	src  string
}{
	{"ex1-man", `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`},
	{"ex2-man-woman", `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
		woman(X) :- sex_guess[1](X, female, 1).
	`},
	{"ex3-dl-contrast", `
		guess(X, in) :- person(X).
		guess(X, out) :- person(X).
		chosen(X) :- guess[1](X, in, 1).
	`},
	{"ex4-choice", `
		pick(N, D) :- emp(N, D), choice((D), (N)).
	`},
	{"ex5-sampling", `
		select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.
	`},
	{"ex6-reach-source", `
		q(X) :- a(X, Y).
		a(X, Y) :- p(X, Z), a(Z, Y).
		a(X, Y) :- p(X, Y).
	`},
}

// TestConcurrentParallelEvalMatchesSequential is the parallel
// evaluator's race-detector stress run: 64 goroutines evaluate the
// paper's Example 1–8 programs with WithParallelism(2..8) over one
// shared frozen database, and every model fingerprint must equal the
// sequential baseline. Run with -race: it exercises the worker pool,
// the shared COW index publication, and the ordered merge all at once.
func TestConcurrentParallelEvalMatchesSequential(t *testing.T) {
	db := NewDatabase()
	for i := 0; i < 6; i++ {
		_ = db.Add("person", Strs(fmt.Sprintf("p%02d", i)))
	}
	for d := 0; d < 4; d++ {
		for e := 0; e < 5; e++ {
			_ = db.Add("emp", Strs(fmt.Sprintf("e%d_%d", d, e), fmt.Sprintf("dept%d", d)))
		}
	}
	for i := 0; i < 30; i++ {
		_ = db.Add("p", Strs(fmt.Sprintf("v%03d", i), fmt.Sprintf("v%03d", i+1)))
		if i%5 == 0 {
			_ = db.Add("p", Strs(fmt.Sprintf("v%03d", i), fmt.Sprintf("w%03d", i)))
		}
	}
	db.Freeze()

	type workload struct {
		name string
		prog *Program
		opts []Option
	}
	var workloads []workload
	for _, ex := range paperExamples {
		prog := mustParse(t, ex.src)
		workloads = append(workloads, workload{ex.name, prog, nil})
		workloads = append(workloads, workload{ex.name + "-seeded", prog, []Option{WithSeed(42)}})
	}
	// Examples 7–8: the §4 rewrite chain applied to Example 6.
	ex6 := mustParse(t, paperExamples[5].src)
	ex8, err := ex6.Optimize("q")
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, workload{"ex7-8-optimized", ex8, nil})

	// Sequential baselines, one full-model fingerprint per workload.
	modelOf := func(w workload, extra ...Option) (string, error) {
		res, err := w.prog.Eval(db, append(append([]Option{}, w.opts...), extra...)...)
		if err != nil {
			return "", fmt.Errorf("%s: %w", w.name, err)
		}
		var b strings.Builder
		for _, p := range w.prog.OutputPredicates() {
			fmt.Fprintf(&b, "%s=%s\n", p, res.Relation(p).Fingerprint())
		}
		return b.String(), nil
	}
	want := make([]string, len(workloads))
	for i, w := range workloads {
		fp, err := modelOf(w)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fp
	}

	const goroutines = 64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			workers := []int{2, 3, 4, 8}[g%4]
			for i, w := range workloads {
				got, err := modelOf(w, WithParallelism(workers))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
				if got != want[i] {
					errs <- fmt.Errorf("goroutine %d: %s with %d workers diverged from sequential",
						g, w.name, workers)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
