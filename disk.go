package idlog

import (
	"io"
	"os"
	"sync"

	"idlog/internal/segment"
	"idlog/internal/storage"
)

// Disk-engine entry points. The in-memory engine remains the default;
// these functions open, create, and checkpoint databases whose frozen
// relations live in block-indexed segment files (internal/segment)
// behind a shared LRU block cache, so EDBs larger than RAM evaluate
// within a bounded resident set. Engine choice is invisible to
// evaluation: a disk-backed Database is the same *Database, produces
// byte-identical fingerprints, and accepts the same mutations (inserts
// overlay in memory; the first deletion promotes the relation).

// BulkLoadStats summarizes a bulk load; see BulkLoadFacts.
type BulkLoadStats = storage.BulkStats

// OpenDiskDatabase opens the disk-backed database in dir (written by
// SaveDiskDatabase or BulkLoadFacts). cacheBytes bounds the decoded-
// block cache shared by the database's segments; 0 uses the process
// default (64 MiB). The returned database is unfrozen, like LoadSnapshot's.
func OpenDiskDatabase(dir string, cacheBytes int64) (*Database, error) {
	e := storage.Engine{Kind: storage.EngineDisk, Dir: dir, CacheBytes: cacheBytes}
	return storage.OpenDir(dir, e.Cache())
}

// SetDiskCacheBytes resizes the process-wide decoded-block cache shared
// by every disk database opened without an explicit budget — the
// library-level equivalent of the CLI's -cache-mb flag. It applies
// immediately: shrinking below current residency evicts LRU blocks.
// Callers that pass cacheBytes > 0 to OpenDiskDatabase get a private
// cache and are unaffected. n must be positive; a separate per-open
// budget of 0 keeps meaning "use this process default".
func SetDiskCacheBytes(n int64) {
	if n > 0 {
		segment.DefaultCache().Resize(n)
	}
}

// DiskCacheStats reports the process-default block cache's cumulative
// hit/miss counters and current resident bytes.
func DiskCacheStats() (hits, misses uint64, bytes int64) {
	c := segment.DefaultCache()
	hits, misses = c.Stats()
	return hits, misses, c.Bytes()
}

// SaveDiskDatabase checkpoints db into dir as segment files, streaming
// relation by relation and atomically swinging the directory manifest,
// so a crash mid-write leaves the previous generation intact.
func SaveDiskDatabase(dir string, db *Database) error {
	return storage.WriteDir(dir, db)
}

// BulkLoadFacts streams ground facts in concrete syntax ("edge(a, b).")
// from r into a fresh disk database at dir without ever materializing a
// relation in memory — the load path for EDBs that do not fit in RAM.
// Open the result with OpenDiskDatabase.
func BulkLoadFacts(dir string, r io.Reader) (BulkLoadStats, error) {
	return storage.BulkLoad(dir, r)
}

// BulkLoadFactsFile is BulkLoadFacts reading from a file.
func BulkLoadFactsFile(dir, factsPath string) (BulkLoadStats, error) {
	return storage.BulkLoadFile(dir, factsPath)
}

// diskTest reports whether the IDLOG_ENGINE=disk test seam is armed:
// the environment knob that re-routes every EvalContext-family call
// through a disk-backed copy of its database, so the entire test suite
// exercises the disk engine (IDLOG_ENGINE=disk go test ./...) with no
// per-test changes.
var diskTest = sync.OnceValue(func() bool {
	return os.Getenv("IDLOG_ENGINE") == string(storage.EngineDisk)
})

// engineTestDB is the seam itself: under IDLOG_ENGINE=disk it spills db
// to a temporary segment directory and reopens it disk-backed. The
// directory is unlinked immediately — the open segment files keep the
// data readable (POSIX) and release on GC — so tests leave nothing
// behind. Without the knob it returns db untouched.
func engineTestDB(db *Database) (*Database, error) {
	if db == nil || !diskTest() || len(db.Names()) == 0 {
		return db, nil
	}
	dir, err := os.MkdirTemp("", "idlog-disk-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := storage.WriteDir(dir, db); err != nil {
		return nil, err
	}
	ddb, err := storage.OpenDir(dir, nil)
	if err != nil {
		return nil, err
	}
	if db.Frozen() {
		ddb.Freeze()
	}
	return ddb, nil
}
