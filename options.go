package idlog

import (
	"context"
	"time"

	"idlog/internal/core"
	"idlog/internal/guard"
)

// Option configures Eval, Enumerate, Query and their *Context variants.
type Option func(*config)

type config struct {
	eval    core.Options
	maxRuns int
	limits  guard.Limits
	fault   *guard.Fault
	noMagic bool
}

// buildConfig folds the options and arms the run's guard: one guard per
// public call, carrying ctx, the wall-clock timeout, and the tuple and
// derivation budgets. Enumerate passes the same config to every run of
// its walk, so the budgets govern the walk as a whole.
func buildConfig(ctx context.Context, opts []Option) *config {
	c := &config{}
	for _, o := range opts {
		o(c)
	}
	g := guard.New(ctx, c.limits)
	if c.fault != nil {
		g.Inject(*c.fault)
	}
	c.eval.Guard = g
	return c
}

// WithOracle selects the ID-function oracle for the run. The default is
// the deterministic SortedOracle.
func WithOracle(o Oracle) Option {
	return func(c *config) { c.eval.Oracle = o }
}

// WithSeed is shorthand for WithOracle(RandomOracle(seed)): a
// reproducible pseudo-random run, the sampling mode.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.eval.Oracle = RandomOracle(seed) }
}

// WithNaive disables semi-naive (delta) fixpoint evaluation; every
// round re-derives from the full relations. Exists for the E6 ablation.
func WithNaive() Option {
	return func(c *config) { c.eval.Naive = true }
}

// WithMaxDerivations aborts evaluation after n body instantiations; a
// safety valve for generated or untrusted programs. On exhaustion the
// partial model computed so far is returned alongside a
// CodeResourceExhausted error.
func WithMaxDerivations(n int) Option {
	return func(c *config) { c.limits.MaxDerivations = n }
}

// WithTimeout bounds the run's wall-clock time (Enumerate: the whole
// walk). It combines with any EvalContext deadline; the earlier wins.
// On expiry the partial model is returned alongside a
// CodeDeadlineExceeded error that matches
// errors.Is(err, context.DeadlineExceeded).
func WithTimeout(d time.Duration) Option {
	return func(c *config) { c.limits.Timeout = d }
}

// WithMaxTuples caps the number of tuples the run may materialize
// (derived tuples plus ID-relation rows) — a memory ceiling for
// untrusted programs, which can be made to compute any computable
// relation (Theorem 6). On exhaustion the partial model is returned
// alongside a CodeResourceExhausted error.
func WithMaxTuples(n int) Option {
	return func(c *config) { c.limits.MaxTuples = n }
}

// WithParallelism evaluates each stratum's fixpoint rounds on n
// worker goroutines. When unset (or 0) the worker count defaults to
// runtime.GOMAXPROCS(0) clamped to 8, so multi-core machines evaluate
// in parallel out of the box; pass 1 to force the sequential engine.
// Answers are byte-identical to the sequential engine at every n:
// workers only read round-start state and a deterministic ordered
// merge performs every insertion, so tuple sets and ID assignment do
// not depend on n. Budgets and cancellation are honored as hard
// ceilings (the sequential engine additionally trips budgets at the
// exact boundary). Tracing (WithTrace) forces sequential evaluation.
func WithParallelism(n int) Option {
	return func(c *config) { c.eval.Parallelism = n }
}

// DefaultParallelism reports the worker count used when WithParallelism
// is unset: runtime.GOMAXPROCS(0) clamped to 8. Exposed so embedders
// (idlogd) can resolve and clamp the effective value themselves.
func DefaultParallelism() int { return core.DefaultParallelism() }

// WithPartitions sets the hash-partition fan-out of partition-parallel
// evaluation: recursive delta passes whose plan carries a partitionable
// join key (see ExplainPlan's "partition:" lines) radix-partition the
// delta and the probed relation on that key into n partitions, each
// evaluated as an independent task against partition-local probe
// indexes — no shared-index contention, and partitions no delta tuple
// reaches never build an index at all. When unset (or 0) the fan-out
// follows the worker count; WithPartitions(1) disables partitioning
// and is the differential twin. Answer sets, ID assignment, and
// fingerprints are byte-identical at every setting (tuple insertion
// order may differ between fan-outs). Clause bodies with ID-literals
// or negation, and runs with the planner off, fall back to the
// range-sharded parallel path.
func WithPartitions(n int) Option {
	return func(c *config) { c.eval.Partitions = n }
}

// WithPlanner enables (the default) or disables the cost-based join
// planner: with it on, clause bodies are reordered by estimated
// selectivity at each stratum's start and semi-naive delta passes
// enumerate the delta literal first. The computed model is identical
// either way — the planner only picks among safety-equivalent orders —
// so WithPlanner(false) is the performance-ablation and escape hatch.
// Tracing (WithTrace) also disables the planner, keeping derivation
// trees independent of relation cardinalities.
func WithPlanner(on bool) Option {
	return func(c *config) { c.eval.NoPlanner = !on }
}

// WithStreaming enables (the default) or disables the streaming
// get-next executor: with it on, clause bodies are evaluated by a
// pipeline of composable cursors with selection and projection pushed
// down into the scans; with it off, the legacy recursive walk runs.
// The computed model, insertion order, and statistics are identical
// either way, so WithStreaming(false) is the performance-ablation and
// escape hatch. Tracing (WithTrace) forces the legacy walk.
func WithStreaming(on bool) Option {
	return func(c *config) { c.eval.NoStreaming = !on }
}

// WithMagic enables (the default) or disables the magic-sets demand
// rewrite for goal queries: with it on, Prepare/Query goals with bound
// arguments evaluate a goal-directed rewriting of the program that
// materializes only the query's derivation cone; with it off (or when
// the rewrite is inapplicable — goals reading through ID-literals or
// negation over derived predicates, or binding nothing) the full
// program is evaluated. Answer sets are identical either way, so
// WithMagic(false) is the performance-ablation and escape hatch.
// Tracing (WithTrace) also disables the rewrite, keeping derivation
// trees in terms of the source rules.
func WithMagic(on bool) Option {
	return func(c *config) { c.noMagic = !on }
}

// withPlanCache arms the evaluation's plan cache (prepared queries).
func withPlanCache(pc *core.PlanCache) Option {
	return func(c *config) { c.eval.PlanCache = pc }
}

// WithMaxRuns bounds the number of evaluation runs Enumerate may
// perform (default 100000).
func WithMaxRuns(n int) Option {
	return func(c *config) { c.maxRuns = n }
}

// WithTrace records the first derivation of every tuple so that
// Result.Explain can print derivation trees. Costs memory proportional
// to the computed model.
func WithTrace() Option {
	return func(c *config) { c.eval.Trace = true }
}

// withFault arms a deterministic fault injection (chaos tests only).
func withFault(f guard.Fault) Option {
	return func(c *config) { c.fault = &f }
}
