package idlog

import "idlog/internal/core"

// Option configures Eval and Enumerate.
type Option func(*config)

type config struct {
	eval    core.Options
	maxRuns int
}

func buildConfig(opts []Option) *config {
	c := &config{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// WithOracle selects the ID-function oracle for the run. The default is
// the deterministic SortedOracle.
func WithOracle(o Oracle) Option {
	return func(c *config) { c.eval.Oracle = o }
}

// WithSeed is shorthand for WithOracle(RandomOracle(seed)): a
// reproducible pseudo-random run, the sampling mode.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.eval.Oracle = RandomOracle(seed) }
}

// WithNaive disables semi-naive (delta) fixpoint evaluation; every
// round re-derives from the full relations. Exists for the E6 ablation.
func WithNaive() Option {
	return func(c *config) { c.eval.Naive = true }
}

// WithMaxDerivations aborts evaluation after n body instantiations; a
// safety valve for generated or untrusted programs.
func WithMaxDerivations(n int) Option {
	return func(c *config) { c.eval.MaxDerivations = n }
}

// WithMaxRuns bounds the number of evaluation runs Enumerate may
// perform (default 100000).
func WithMaxRuns(n int) Option {
	return func(c *config) { c.maxRuns = n }
}

// WithTrace records the first derivation of every tuple so that
// Result.Explain can print derivation trees. Costs memory proportional
// to the computed model.
func WithTrace() Option {
	return func(c *config) { c.eval.Trace = true }
}
