package idlog

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
)

// TestStreamingPreservesPaperExamples is the streaming executor's
// end-to-end acceptance check: the paper's Examples 1–8 must produce
// byte-identical model fingerprints AND identical engine statistics
// with the executor on and off, sequentially and with 4 workers, with
// the planner on and off. (The executor only changes how each body
// instantiation is enumerated, never which instantiations occur or in
// what order, so even TuplesScanned must agree exactly.)
func TestStreamingPreservesPaperExamples(t *testing.T) {
	db := NewDatabase()
	for i := 0; i < 6; i++ {
		_ = db.Add("person", Strs(fmt.Sprintf("p%02d", i)))
	}
	for d := 0; d < 4; d++ {
		for e := 0; e < 5; e++ {
			_ = db.Add("emp", Strs(fmt.Sprintf("e%d_%d", d, e), fmt.Sprintf("dept%d", d)))
		}
	}
	for i := 0; i < 30; i++ {
		_ = db.Add("p", Strs(fmt.Sprintf("v%03d", i), fmt.Sprintf("v%03d", i+1)))
		if i%5 == 0 {
			_ = db.Add("p", Strs(fmt.Sprintf("v%03d", i), fmt.Sprintf("w%03d", i)))
		}
	}
	db.Freeze()

	type workload struct {
		name string
		prog *Program
		opts []Option
	}
	var workloads []workload
	for _, ex := range paperExamples {
		prog := mustParse(t, ex.src)
		workloads = append(workloads, workload{ex.name, prog, nil})
		workloads = append(workloads, workload{ex.name + "-seeded", prog, []Option{WithSeed(42)}})
	}
	ex6 := mustParse(t, paperExamples[5].src)
	ex8, err := ex6.Optimize("q")
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, workload{"ex7-8-optimized", ex8, nil})

	// modelOf renders fingerprints plus the full Stats so a divergence
	// in either is caught.
	modelOf := func(w workload, extra ...Option) string {
		t.Helper()
		res, err := w.prog.Eval(db, append(append([]Option{}, w.opts...), extra...)...)
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		var b strings.Builder
		for _, p := range w.prog.OutputPredicates() {
			fmt.Fprintf(&b, "%s=%s\n", p, res.Relation(p).Fingerprint())
		}
		fmt.Fprintf(&b, "stats=%+v\n", res.Stats)
		return b.String()
	}

	for _, w := range workloads {
		want := modelOf(w) // streaming on, sequential: the reference
		variants := []struct {
			name  string
			extra []Option
		}{
			{"stream-off", []Option{WithStreaming(false)}},
			{"stream-on-parallel", []Option{WithParallelism(4)}},
			{"stream-off-parallel", []Option{WithStreaming(false), WithParallelism(4)}},
			{"stream-on-planner-off", []Option{WithPlanner(false)}},
			{"stream-off-planner-off", []Option{WithStreaming(false), WithPlanner(false)}},
		}
		// Parallel runs may schedule identically but their per-variant
		// reference is the matching legacy-walk run, so compare pairs
		// that differ ONLY in the streaming flag.
		pairs := [][2]int{{0, -1}, {2, 1}, {4, 3}}
		got := make([]string, len(variants))
		for i, v := range variants {
			got[i] = modelOf(w, v.extra...)
		}
		for _, pr := range pairs {
			ref := want
			if pr[1] >= 0 {
				ref = got[pr[1]]
			}
			if got[pr[0]] != ref {
				t.Errorf("%s: %s diverged from its legacy-walk twin\nwant:\n%s\ngot:\n%s",
					w.name, variants[pr[0]].name, ref, got[pr[0]])
			}
		}
		// And every variant's fingerprints must match the reference
		// (stats aside, the model itself never depends on any toggle).
		for i, v := range variants {
			gf := got[i][:strings.Index(got[i], "stats=")]
			wf := want[:strings.Index(want, "stats=")]
			if gf != wf {
				t.Errorf("%s: %s model diverged\nwant:\n%s\ngot:\n%s", w.name, v.name, wf, gf)
			}
		}
	}
}

// diskSeam reports whether the IDLOG_ENGINE=disk test seam is active;
// it reroutes every public call through a fresh database (new version
// stamp), so plan-cache hit assertions do not apply.
func diskSeam() bool { return os.Getenv("IDLOG_ENGINE") == "disk" }

// TestPreparedQueryMatchesQuery pins the prepared-query API: same rows
// as Program.Query, typed parse errors, and actual plan-cache hits on
// repeated runs against an unchanged database.
func TestPreparedQueryMatchesQuery(t *testing.T) {
	prog := mustParse(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	db := NewDatabase()
	if err := AddFactsText(db, "e(a, b). e(b, c). e(c, d)."); err != nil {
		t.Fatal(err)
	}
	db.Freeze()

	pq, err := prog.Prepare("tc(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if pq.Goal() != "tc(a, Y)" {
		t.Fatalf("Goal() = %q", pq.Goal())
	}
	want, err := prog.Query(db, "tc(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := pq.Query(db)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) || fmt.Sprint(got.Vars) != fmt.Sprint(want.Vars) {
			t.Fatalf("run %d: prepared rows %v, want %v", i, got.Rows, want.Rows)
		}
	}
	if hits, misses := pq.CacheStats(); !diskSeam() && (hits != 2 || misses != 1) {
		t.Fatalf("plan cache: hits=%d misses=%d, want 2/1", hits, misses)
	}

	// A malformed goal surfaces as a typed parse error from Prepare.
	if _, err := prog.Prepare("tc(a, "); err == nil {
		t.Fatal("Prepare accepted a malformed goal")
	} else {
		var ie *Error
		if !errors.As(err, &ie) || ie.Code != CodeParseError {
			t.Fatalf("Prepare error = %v, want CodeParseError", err)
		}
	}
}

// TestPlanCacheInvalidation is the ISSUE's property test: a seeded
// random interleaving of Database.Apply mutations with cached prepared
// queries must always agree with a fresh parse+compile+plan of the
// same goal — sequentially and with 4 workers — and the plan cache
// must actually hit between mutations.
func TestPlanCacheInvalidation(t *testing.T) {
	prog := mustParse(t, `
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- tc(X, Y), edge(Y, Z).
		unreach(X, Y) :- node(X), node(Y), not tc(X, Y).
	`)
	const nodes = 8
	db := NewDatabase()
	for i := 0; i < nodes; i++ {
		_ = db.Add("node", Strs(fmt.Sprintf("n%d", i)))
	}
	_ = db.Add("edge", Strs("n0", "n1"))
	db = db.Freeze()

	goals := []string{"tc(n0, Y)", "unreach(X, n1)"}
	prepared := make([]*PreparedQuery, len(goals))
	for i, g := range goals {
		pq, err := prog.Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		prepared[i] = pq
	}

	rng := rand.New(rand.NewSource(7))
	edge := func() Fact {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		return Fact{Pred: "edge", Tuple: Strs(fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b))}
	}
	optionSets := [][]Option{nil, {WithParallelism(4)}}

	for round := 0; round < 40; round++ {
		// Mutate roughly every other round so cached plans both hit
		// (same version) and invalidate (new version).
		if round > 0 && rng.Intn(2) == 0 {
			var ins, del []Fact
			for n := rng.Intn(3); n >= 0; n-- {
				ins = append(ins, edge())
			}
			if rng.Intn(2) == 0 {
				del = append(del, edge())
			}
			next, _, err := db.Apply(ins, del)
			if err != nil {
				t.Fatalf("round %d: apply: %v", round, err)
			}
			db = next
		}
		gi := rng.Intn(len(goals))
		for oi, opts := range optionSets {
			cached, err := prepared[gi].Query(db, opts...)
			if err != nil {
				t.Fatalf("round %d: prepared: %v", round, err)
			}
			fresh, err := prog.Query(db, goals[gi], opts...)
			if err != nil {
				t.Fatalf("round %d: fresh: %v", round, err)
			}
			if fmt.Sprint(cached.Rows) != fmt.Sprint(fresh.Rows) {
				t.Fatalf("round %d goal %q opts %d: cached %v != fresh %v",
					round, goals[gi], oi, cached.Rows, fresh.Rows)
			}
		}
	}
	if !diskSeam() {
		var hits uint64
		for _, pq := range prepared {
			h, m := pq.CacheStats()
			if h+m == 0 {
				t.Fatal("prepared query never consulted its plan cache")
			}
			hits += h
		}
		// Each round runs the same goal seq then parallel against one
		// database version, so hits are guaranteed in-memory.
		if hits == 0 {
			t.Fatal("plan cache never hit across 40 rounds")
		}
	}
}

// TestSetDiskCacheBytes pins the runtime-resizable block-cache budget:
// shrinking the process-wide cache must shed resident bytes down to
// the new budget, and growing it must widen admission.
func TestSetDiskCacheBytes(t *testing.T) {
	defer SetDiskCacheBytes(64 << 20) // restore the default budget
	SetDiskCacheBytes(1 << 20)
	if _, _, bytes := DiskCacheStats(); bytes > 1<<20 {
		t.Fatalf("cache holds %d bytes after shrinking to 1 MiB", bytes)
	}
	SetDiskCacheBytes(64 << 20)
	if _, _, bytes := DiskCacheStats(); bytes > 64<<20 {
		t.Fatalf("cache holds %d bytes, budget 64 MiB", bytes)
	}
}
