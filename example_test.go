package idlog_test

import (
	"fmt"
	"log"

	"idlog"
)

// The paper's flagship sampling query: an arbitrary set of employees
// containing exactly two per department, reproducible from a seed.
func Example() {
	prog, err := idlog.Parse(`
		select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.
	`)
	if err != nil {
		log.Fatal(err)
	}
	db := idlog.NewDatabase()
	err = idlog.AddFactsText(db, `
		emp(joe, toys). emp(sue, toys). emp(ann, toys).
		emp(bob, shoes). emp(eve, shoes).
	`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Eval(db, idlog.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Relation("select_two_emp").Len(), "employees selected")
	// Output: 4 employees selected
}

// Recursive rules with stratified negation evaluate to the perfect
// model.
func ExampleProgram_Eval() {
	prog, err := idlog.Parse(`
		reach(X) :- start(X).
		reach(Y) :- reach(X), link(X, Y).
		dead(X) :- node(X), not reach(X).
	`)
	if err != nil {
		log.Fatal(err)
	}
	db := idlog.NewDatabase()
	_ = idlog.AddFactsText(db, "link(a, b). link(b, c). link(x, y). start(a). node(a). node(c). node(x).")
	res, err := prog.Eval(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Relation("reach"))
	fmt.Println(res.Relation("dead"))
	// Output:
	// reach{(a), (b), (c)}
	// dead{(x)}
}

// Enumerate walks every ID-function assignment: the man/woman program
// of the paper's Example 2 has the powerset of persons as its answers.
func ExampleProgram_Enumerate() {
	prog, err := idlog.Parse(`
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`)
	if err != nil {
		log.Fatal(err)
	}
	db := idlog.NewDatabase()
	_ = idlog.AddFactsText(db, "person(ada). person(bob).")
	answers, err := prog.Enumerate(db, []string{"man"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(answers), "possible answers")
	// Output: 4 possible answers
}

// Query evaluates a one-off goal against the program.
func ExampleProgram_Query() {
	prog, err := idlog.Parse(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	db := idlog.NewDatabase()
	_ = idlog.AddFactsText(db, "e(a, b). e(b, c).")
	qr, err := prog.Query(db, "tc(a, Y)")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range qr.Rows {
		fmt.Println(qr.Vars[0], "=", row[0])
	}
	// Output:
	// Y = b
	// Y = c
}

// Optimize applies the §4 rewriting: existential arguments become
// tid-0 ID-literals.
func ExampleProgram_Optimize() {
	prog, err := idlog.Parse(`all_depts(D) :- emp(N, D).`)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := prog.Optimize("all_depts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(opt)
	// Output: all_depts(D) :- emp[2](N, D, 0).
}

// DATALOG^C choice programs are translated to IDLOG transparently
// (Theorem 2 of the paper).
func ExampleParse_choice() {
	prog, err := idlog.Parse(`
		select_emp(Name) :- emp(Name, Dept), choice((Dept), (Name)).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(prog)
	// Output:
	// select_emp(Name) :- emp(Name, Dept), ext_choice_0_sel(Dept, Name).
	// ext_choice_0(Dept, Name) :- emp(Name, Dept).
	// ext_choice_0_sel(Dept, Name) :- ext_choice_0[1](Dept, Name, 0).
}

// Tracing records first derivations so results can be explained.
func ExampleResult_Explain() {
	prog, err := idlog.Parse(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	db := idlog.NewDatabase()
	_ = idlog.AddFactsText(db, "e(a, b). e(b, c).")
	res, err := prog.Eval(db, idlog.WithTrace())
	if err != nil {
		log.Fatal(err)
	}
	tree, err := res.Explain("tc", idlog.Strs("a", "c"), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree)
	// Output:
	// tc(a, c)  <=  tc(X, Y) :- e(X, Z), tc(Z, Y).
	//   e(a, b)  [input]
	//   tc(b, c)  <=  tc(X, Y) :- e(X, Y).
	//     e(b, c)  [input]
}
