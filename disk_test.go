package idlog

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDiskDatabaseRoundTrip drives the public disk-engine API end to
// end: bulk-load facts into a data directory, open it, evaluate,
// checkpoint the result, and reopen — fingerprints identical at every
// hop.
func TestDiskDatabaseRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	var facts strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&facts, "edge(n%d, n%d).\n", i, (i+1)%500)
	}
	stats, err := BulkLoadFacts(dir, strings.NewReader(facts.String()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Relations != 1 || stats.Tuples != 500 {
		t.Fatalf("bulk load stats = %+v", stats)
	}

	db, err := OpenDiskDatabase(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Relation("edge").SourceLen(); got != 500 {
		t.Fatalf("SourceLen = %d, want all 500 tuples disk-resident", got)
	}
	prog, err := Parse(`
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- tc(X, Y), edge(Y, Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Eval(db.Freeze())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relation("tc").Len(); got != 500*500 {
		t.Fatalf("tc over a 500-ring = %d tuples, want %d", got, 500*500)
	}

	// Checkpoint the model and reopen: byte-identical fingerprints.
	out := NewDatabase()
	out.SetRelation("tc", res.Relation("tc"))
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := SaveDiskDatabase(ckpt, out); err != nil {
		t.Fatal(err)
	}
	back, err := OpenDiskDatabase(ckpt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Relation("tc").Fingerprint() != res.Relation("tc").Fingerprint() {
		t.Fatal("tc fingerprint changed across checkpoint + reopen")
	}
}

// differentialPrograms is the program pool for the cross-engine
// differential suite: stratified programs spanning recursion, negation,
// arithmetic, and joins over the generated EDB (edge/2, label/1,
// weight/2).
var differentialPrograms = []string{
	// Transitive closure.
	`tc(X, Y) :- edge(X, Y).
	 tc(X, Z) :- tc(X, Y), edge(Y, Z).`,
	// Join against a unary relation plus projection.
	`hop(X, Z) :- edge(X, Y), edge(Y, Z).
	 marked(X) :- label(X), hop(X, _).`,
	// Stratified negation: nodes with no outgoing edge.
	`node(X) :- edge(X, _).
	 node(Y) :- edge(_, Y).
	 hasout(X) :- edge(X, _).
	 sink(X) :- node(X), not hasout(X).`,
	// Arithmetic over the weight relation.
	`heavy(X) :- weight(X, W), W > 50.
	 pair(X, Y) :- heavy(X), heavy(Y), edge(X, Y).`,
}

// dbAfterMutations builds a random EDB over n symbols, then runs a
// random mutation interleaving (insert and delete batches) against it,
// exactly as a live session would. The returned database is the
// post-interleaving state.
func dbAfterMutations(db *Database, rng *rand.Rand, n int) *Database {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	sym := func() Value { return Str(names[rng.Intn(n)]) }
	for i := 0; i < n*3; i++ {
		db.Add("edge", Tuple{sym(), sym()})
	}
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			db.Add("label", Tuple{sym()})
		}
		db.Add("weight", Tuple{sym(), Int(int64(rng.Intn(100)))})
	}
	// Mutation interleaving: alternating insert/delete batches through
	// the same Apply path the REPL, WAL replay, and idlogd use.
	for round := 0; round < 4; round++ {
		var ins, dels []Fact
		for i := 0; i < 1+rng.Intn(5); i++ {
			ins = append(ins, Fact{Pred: "edge", Tuple: Tuple{sym(), sym()}})
		}
		edge := db.Relation("edge")
		if edge != nil && edge.Len() > 0 {
			all := edge.Sorted()
			for i := 0; i < 1+rng.Intn(3); i++ {
				dels = append(dels, Fact{Pred: "edge", Tuple: all[rng.Intn(len(all))]})
			}
		}
		next, _, err := db.Apply(ins, dels)
		if err != nil {
			panic(err)
		}
		db = next
	}
	return db
}

// TestDiskEngineDifferential is the cross-engine property test: for
// random EDBs shaped by random mutation interleavings, the disk engine
// must be observationally identical to the in-memory engine — same
// relation fingerprints after spill+reopen, and same evaluation results
// for every program in the pool, sequentially and in parallel. Run with
// -race this also exercises concurrent block-cache access.
func TestDiskEngineDifferential(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			mem := dbAfterMutations(NewDatabase(), rng, 5+rng.Intn(20))

			dir := filepath.Join(t.TempDir(), "data")
			if err := SaveDiskDatabase(dir, mem); err != nil {
				t.Fatal(err)
			}
			disk, err := OpenDiskDatabase(dir, 8<<10) // tiny cache: force eviction traffic
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range mem.Names() {
				mr, dr := mem.Relation(name), disk.Relation(name)
				if dr == nil || mr.Fingerprint() != dr.Fingerprint() {
					t.Fatalf("trial %d: %s fingerprint diverges after spill+reopen", trial, name)
				}
			}
			mem.Freeze()
			disk.Freeze()
			for pi, src := range differentialPrograms {
				prog, err := Parse(src)
				if err != nil {
					t.Fatalf("program %d: %v", pi, err)
				}
				for _, par := range []int{1, 4} {
					opts := []Option{}
					if par > 1 {
						opts = append(opts, WithParallelism(par))
					}
					mres, merr := prog.Eval(mem, opts...)
					dres, derr := prog.Eval(disk, opts...)
					if (merr == nil) != (derr == nil) {
						t.Fatalf("trial %d program %d par %d: mem err %v, disk err %v", trial, pi, par, merr, derr)
					}
					if merr != nil {
						continue
					}
					for _, p := range prog.OutputPredicates() {
						mrel, drel := mres.Relation(p), dres.Relation(p)
						if (mrel == nil) != (drel == nil) {
							t.Fatalf("trial %d program %d par %d: %s presence diverges", trial, pi, par, p)
						}
						if mrel != nil && mrel.Fingerprint() != drel.Fingerprint() {
							t.Fatalf("trial %d program %d par %d: %s fingerprint diverges\nmem:  %v\ndisk: %v",
								trial, pi, par, p, mrel, drel)
						}
					}
				}
			}
		})
	}
}

// TestDiskEngineSeamEnv pins the IDLOG_ENGINE=disk test seam itself: it
// is compiled in, off by default, and spills through the same WriteDir/
// OpenDir path the differential suite validates. (The full-suite run
// under the seam happens in CI via IDLOG_ENGINE=disk go test ./...,
// where the env var is set before process start; here we only verify
// the off state, since the seam latches its first reading.)
func TestDiskEngineSeamEnv(t *testing.T) {
	if os.Getenv("IDLOG_ENGINE") == "disk" {
		t.Skip("seam armed for this whole process; covered by the suite itself")
	}
	db := NewDatabase()
	db.Add("edge", Tuple{Str("a"), Str("b")})
	got, err := engineTestDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if got != db {
		t.Fatal("seam rerouted the database with IDLOG_ENGINE unset")
	}
}
