package idlog

import (
	"context"
	"fmt"

	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/guard"
	"idlog/internal/magic"
	"idlog/internal/parser"
)

// Query evaluates a single goal — a comma-separated body such as
// "emp(X, toys), X != joe" — against the program and db, returning one
// row per satisfying binding of the goal's variables, in the order the
// variables first appear. A ground goal returns one empty row when it
// holds and no rows otherwise.
//
// Query is what the CLI's interactive "?-" prompt runs; here it is
// exposed for programs.
func (p *Program) Query(db *Database, goal string, opts ...Option) (*QueryResult, error) {
	return p.QueryContext(context.Background(), db, goal, opts...)
}

// QueryContext is Query honoring ctx and the governance options: a
// malformed goal yields a CodeParseError, a tripped run returns the
// bindings found so far alongside the typed error, and engine panics
// surface as CodeInternal errors instead of killing the caller.
func (p *Program) QueryContext(ctx context.Context, db *Database, goal string, opts ...Option) (qr *QueryResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			qr, err = nil, guard.Errorf(guard.Internal, "query", "panic: %v", r)
		}
	}()
	pq, err := p.Prepare(goal)
	if err != nil {
		return nil, err
	}
	return pq.run(ctx, db, opts)
}

// Prepare parses and compiles the goal against the program once,
// returning a PreparedQuery whose Query/QueryContext skip goal parsing,
// wrapper compilation, and analysis on every call — and whose plan
// cache additionally skips stratum planning when the same database
// snapshot is queried repeatedly. A malformed goal yields a typed
// CodeParseError, exactly as Query does.
//
// A PreparedQuery is immutable and safe for concurrent use (subject to
// the Database concurrency contract: freeze a database before sharing
// it across goroutines).
func (p *Program) Prepare(goal string) (*PreparedQuery, error) {
	wrapped, err := parser.Clause("query_wrapper_head :- " + goal + ".")
	if err != nil {
		return nil, guard.WrapErr(guard.ParseError, "query", err, fmt.Sprintf("goal %q", goal))
	}
	ansPred := "ans"
	for taken := true; taken; {
		taken = false
		for _, c := range p.pure.Clauses {
			if c.Head.Pred == ansPred {
				ansPred += "_"
				taken = true
			}
		}
	}
	vars := ast.ClauseVars(&ast.Clause{Head: &ast.Atom{Pred: "x"}, Body: wrapped.Body})
	head := &ast.Atom{Pred: ansPred}
	for _, v := range vars {
		head.Args = append(head.Args, v)
	}
	prog := &ast.Program{Clauses: append(append([]*ast.Clause{}, p.pure.Clauses...),
		&ast.Clause{Head: head, Body: wrapped.Body})}
	compiled, err := FromAST(prog)
	if err != nil {
		return nil, err
	}
	pq := &PreparedQuery{
		goal:     goal,
		compiled: compiled,
		vars:     vars,
		ansPred:  ansPred,
		cache:    core.NewPlanCache(0),
	}
	// Demand path: rewrite the wrapper program so evaluation
	// materializes only the goal's derivation cone. Inapplicable goals
	// (ID-literals or negation over derived predicates in the cone, or
	// nothing bound) fall back to the full program; so does any analysis
	// failure of the rewritten program (defensive — e.g. an
	// unstratifiable magic variant).
	if rw, merr := magic.Rewrite(compiled.info, ansPred); merr != nil {
		pq.magicErr = merr
	} else if mp, ferr := FromAST(rw.Program); ferr != nil {
		pq.magicErr = ferr
	} else {
		pq.magicProg, pq.rewrite = mp, rw
	}
	return pq, nil
}

// PreparedQuery is a goal compiled once by Program.Prepare for repeated
// execution. Each instance owns a plan cache shared by its runs: the
// first evaluation against a database snapshot compiles and publishes
// the stratum plans, subsequent evaluations against the same snapshot
// (same Database version — any Apply/Add/SetRelation invalidates)
// reuse them.
type PreparedQuery struct {
	goal     string
	compiled *Program
	vars     []ast.Var
	ansPred  string
	cache    *core.PlanCache
	// magicProg is the magic-sets rewriting of the wrapper program, nil
	// when the rewrite was inapplicable (magicErr says why). Both
	// programs share cache: plan-cache keys include the analysis
	// identity, so the rewritten plans — which embed the goal's
	// adornment — are cached separately from the full program's.
	magicProg *Program
	rewrite   *magic.Rewritten
	magicErr  error
}

// Goal returns the goal text the query was prepared from.
func (pq *PreparedQuery) Goal() string { return pq.goal }

// Query executes the prepared goal against db; see Program.Query for
// the result contract.
func (pq *PreparedQuery) Query(db *Database, opts ...Option) (*QueryResult, error) {
	return pq.QueryContext(context.Background(), db, opts...)
}

// QueryContext is Query honoring ctx and the governance options; see
// Program.QueryContext for the degradation contract.
func (pq *PreparedQuery) QueryContext(ctx context.Context, db *Database, opts ...Option) (qr *QueryResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			qr, err = nil, guard.Errorf(guard.Internal, "query", "panic: %v", r)
		}
	}()
	return pq.run(ctx, db, opts)
}

// CacheStats reports the prepared query's plan-cache counters.
func (pq *PreparedQuery) CacheStats() (hits, misses uint64) { return pq.cache.Stats() }

// UsesMagic reports whether the goal admitted the magic-sets demand
// rewrite; when false, runs always evaluate the full program (see
// WithMagic for the fallback matrix).
func (pq *PreparedQuery) UsesMagic() bool { return pq.magicProg != nil }

// selectProgram picks the program a run with the given options
// evaluates: the magic rewriting when available and not disabled
// (WithMagic(false)), and not tracing — traces must explain tuples in
// terms of the source rules.
func (pq *PreparedQuery) selectProgram(opts []Option) (prog *Program, usedMagic bool) {
	c := &config{}
	for _, o := range opts {
		o(c)
	}
	if pq.magicProg != nil && !c.noMagic && !c.eval.Trace {
		return pq.magicProg, true
	}
	return pq.compiled, false
}

// ExplainPlan renders the join plans the goal's runs would use,
// against the program that would actually execute: when the demand
// rewrite is active the rewritten (adorned + magic) rules are shown,
// with a header naming the goal's adornment; otherwise the full
// wrapper program, with the fallback reason when the rewrite was
// inapplicable.
func (pq *PreparedQuery) ExplainPlan(db *Database, opts ...Option) (string, error) {
	return pq.ExplainPlanContext(context.Background(), db, opts...)
}

// ExplainPlanContext is ExplainPlan honoring ctx.
func (pq *PreparedQuery) ExplainPlanContext(ctx context.Context, db *Database, opts ...Option) (string, error) {
	prog, usedMagic := pq.selectProgram(opts)
	plan, err := prog.ExplainPlanContext(ctx, db, opts...)
	if err != nil {
		return "", err
	}
	switch {
	case usedMagic:
		return "demand: magic-sets rewrite active (" + pq.rewrite.Summary() + ")\n" + plan, nil
	case pq.magicProg != nil:
		return "demand: magic-sets rewrite available but disabled\n" + plan, nil
	default:
		return "demand: full evaluation (" + pq.magicErr.Error() + ")\n" + plan, nil
	}
}

// run evaluates the pre-compiled wrapper program — or its magic-sets
// rewriting when the demand path is active — with the plan cache armed
// (appended last so it cannot be overridden by caller options).
func (pq *PreparedQuery) run(ctx context.Context, db *Database, opts []Option) (*QueryResult, error) {
	opts = append(append([]Option{}, opts...), withPlanCache(pq.cache))
	prog, usedMagic := pq.selectProgram(opts)
	res, err := prog.EvalContext(ctx, db, opts...)
	if err != nil {
		// A governed trip still carries the bindings derived so far.
		if res != nil && res.Incomplete {
			return pq.result(res, usedMagic), err
		}
		return nil, err
	}
	return pq.result(res, usedMagic), nil
}

func (pq *PreparedQuery) result(res *Result, usedMagic bool) *QueryResult {
	qr := buildQueryResult(pq.vars, res, pq.ansPred)
	qr.Stats = res.Stats
	qr.UsedMagic = usedMagic
	return qr
}

// buildQueryResult projects the answer predicate's relation onto a
// QueryResult. A missing relation (possible on partial models) yields
// the empty result rather than a nil dereference.
func buildQueryResult(vars []ast.Var, res *Result, ansPred string) *QueryResult {
	qr := &QueryResult{}
	for _, v := range vars {
		qr.Vars = append(qr.Vars, v.Name)
	}
	rel := res.Relation(ansPred)
	if rel == nil {
		return qr
	}
	for _, t := range rel.Sorted() {
		qr.Rows = append(qr.Rows, t)
	}
	return qr
}

// QueryResult holds the bindings produced by Program.Query.
type QueryResult struct {
	// Vars names the goal's variables, in order of first occurrence;
	// each row's columns align with it.
	Vars []string
	// Rows are the satisfying bindings, canonically sorted.
	Rows []Tuple
	// Stats carries the run's evaluation counters; with the demand
	// rewrite active they cover only the goal's derivation cone.
	Stats Stats
	// UsedMagic reports whether this run evaluated the magic-sets
	// rewriting of the program rather than the full program.
	UsedMagic bool
}

// Holds reports whether the goal was satisfiable (at least one row, or
// — for ground goals — the single empty binding).
func (q *QueryResult) Holds() bool { return len(q.Rows) > 0 }

// AddFactsText parses ground facts in program syntax ("emp(joe, toys).")
// and adds them to db. Rules and non-ground facts are rejected.
func AddFactsText(db *Database, src string) error {
	facts, err := ParseFacts(src)
	if err != nil {
		return err
	}
	for _, f := range facts {
		if err := db.Add(f.Pred, f.Tuple); err != nil {
			return fmt.Errorf("idlog: facts: %w", err)
		}
	}
	return nil
}
