package idlog

import (
	"context"
	"fmt"

	"idlog/internal/ast"
	"idlog/internal/guard"
	"idlog/internal/parser"
)

// Query evaluates a single goal — a comma-separated body such as
// "emp(X, toys), X != joe" — against the program and db, returning one
// row per satisfying binding of the goal's variables, in the order the
// variables first appear. A ground goal returns one empty row when it
// holds and no rows otherwise.
//
// Query is what the CLI's interactive "?-" prompt runs; here it is
// exposed for programs.
func (p *Program) Query(db *Database, goal string, opts ...Option) (*QueryResult, error) {
	return p.QueryContext(context.Background(), db, goal, opts...)
}

// QueryContext is Query honoring ctx and the governance options: a
// malformed goal yields a CodeParseError, a tripped run returns the
// bindings found so far alongside the typed error, and engine panics
// surface as CodeInternal errors instead of killing the caller.
func (p *Program) QueryContext(ctx context.Context, db *Database, goal string, opts ...Option) (qr *QueryResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			qr, err = nil, guard.Errorf(guard.Internal, "query", "panic: %v", r)
		}
	}()
	wrapped, err := parser.Clause("query_wrapper_head :- " + goal + ".")
	if err != nil {
		return nil, guard.WrapErr(guard.ParseError, "query", err, fmt.Sprintf("goal %q", goal))
	}
	ansPred := "ans"
	for taken := true; taken; {
		taken = false
		for _, c := range p.pure.Clauses {
			if c.Head.Pred == ansPred {
				ansPred += "_"
				taken = true
			}
		}
	}
	vars := ast.ClauseVars(&ast.Clause{Head: &ast.Atom{Pred: "x"}, Body: wrapped.Body})
	head := &ast.Atom{Pred: ansPred}
	for _, v := range vars {
		head.Args = append(head.Args, v)
	}
	prog := &ast.Program{Clauses: append(append([]*ast.Clause{}, p.pure.Clauses...),
		&ast.Clause{Head: head, Body: wrapped.Body})}
	compiled, err := FromAST(prog)
	if err != nil {
		return nil, err
	}
	res, err := compiled.EvalContext(ctx, db, opts...)
	if err != nil {
		// A governed trip still carries the bindings derived so far.
		if res != nil && res.Incomplete {
			return buildQueryResult(vars, res, ansPred), err
		}
		return nil, err
	}
	return buildQueryResult(vars, res, ansPred), nil
}

// buildQueryResult projects the answer predicate's relation onto a
// QueryResult. A missing relation (possible on partial models) yields
// the empty result rather than a nil dereference.
func buildQueryResult(vars []ast.Var, res *Result, ansPred string) *QueryResult {
	qr := &QueryResult{}
	for _, v := range vars {
		qr.Vars = append(qr.Vars, v.Name)
	}
	rel := res.Relation(ansPred)
	if rel == nil {
		return qr
	}
	for _, t := range rel.Sorted() {
		qr.Rows = append(qr.Rows, t)
	}
	return qr
}

// QueryResult holds the bindings produced by Program.Query.
type QueryResult struct {
	// Vars names the goal's variables, in order of first occurrence;
	// each row's columns align with it.
	Vars []string
	// Rows are the satisfying bindings, canonically sorted.
	Rows []Tuple
}

// Holds reports whether the goal was satisfiable (at least one row, or
// — for ground goals — the single empty binding).
func (q *QueryResult) Holds() bool { return len(q.Rows) > 0 }

// AddFactsText parses ground facts in program syntax ("emp(joe, toys).")
// and adds them to db. Rules and non-ground facts are rejected.
func AddFactsText(db *Database, src string) error {
	facts, err := ParseFacts(src)
	if err != nil {
		return err
	}
	for _, f := range facts {
		if err := db.Add(f.Pred, f.Tuple); err != nil {
			return fmt.Errorf("idlog: facts: %w", err)
		}
	}
	return nil
}
