// Command idlogbench regenerates the experiment tables of
// EXPERIMENTS.md: one table per claim of the paper (E1–E8).
//
// Usage:
//
//	idlogbench [-suite quick|full] [-only E3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"idlog/internal/bench"
	"idlog/internal/bench/serverbench"
)

func main() {
	suiteName := flag.String("suite", "quick", "experiment sizing: quick or full")
	only := flag.String("only", "all", "run a single experiment (E1..E19) or all")
	markdown := flag.Bool("md", false, "emit GitHub-flavoured markdown tables")
	jsonOut := flag.Bool("json", false, "also write the tables to BENCH_<suite>.json (BENCH_<experiment>.json with -only)")
	flag.Parse()

	var suite bench.Suite
	switch *suiteName {
	case "quick":
		suite = bench.Quick()
	case "full":
		suite = bench.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q (want quick or full)\n", *suiteName)
		os.Exit(2)
	}

	start := time.Now()
	tables := bench.Run(suite, *only)
	if *only == "" || *only == "all" || *only == "E12" {
		s := time.Now()
		tbl := serverbench.E12(suite.E12Clients, suite.E12Requests, suite.E12Emp[0], suite.E12Emp[1])
		tbl.ElapsedNS = time.Since(s).Nanoseconds()
		tables = append(tables, tbl)
	}
	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *only)
		os.Exit(2)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *markdown {
			fmt.Print(t.RenderMarkdown())
		} else {
			fmt.Print(t.Render())
		}
	}
	if *jsonOut {
		tag := *suiteName
		if *only != "" && *only != "all" {
			tag = strings.ToLower(*only)
		}
		path := fmt.Sprintf("BENCH_%s.json", tag)
		if err := bench.NewReport(*suiteName, tables).WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	fmt.Printf("\ntotal: %d experiments in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
}
