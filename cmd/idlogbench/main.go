// Command idlogbench regenerates the experiment tables of
// EXPERIMENTS.md: one table per claim of the paper (E1–E8).
//
// Usage:
//
//	idlogbench [-suite quick|full] [-only E3]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"idlog/internal/bench"
)

func main() {
	suiteName := flag.String("suite", "quick", "experiment sizing: quick or full")
	only := flag.String("only", "all", "run a single experiment (E1..E11) or all")
	markdown := flag.Bool("md", false, "emit GitHub-flavoured markdown tables")
	flag.Parse()

	var suite bench.Suite
	switch *suiteName {
	case "quick":
		suite = bench.Quick()
	case "full":
		suite = bench.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q (want quick or full)\n", *suiteName)
		os.Exit(2)
	}

	start := time.Now()
	tables := bench.Run(suite, *only)
	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *only)
		os.Exit(2)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *markdown {
			fmt.Print(t.RenderMarkdown())
		} else {
			fmt.Print(t.Render())
		}
	}
	fmt.Printf("\ntotal: %d experiments in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
}
