// Command idlogd is the IDLOG query server: a long-lived daemon that
// compiles programs once at startup (or on registration) and serves
// queries over HTTP/JSON with per-request resource budgets, admission
// control, named database sessions, and Prometheus-style metrics.
//
// Usage:
//
//	idlogd [flags] [program.idl ...]
//
// Each positional argument is compiled and registered under its base
// name ("examples/programs/tc.idl" becomes program "tc"). More
// programs can be registered at runtime via POST /v1/programs.
//
//	-addr addr            listen address (default :8344)
//	-facts file           fact file(s) preloaded into the startup session (repeatable)
//	-load file.idb        binary snapshot preloaded into the startup session
//	-session name         name of the startup session (default "default")
//	-max-concurrent n     worker-pool size (default GOMAXPROCS)
//	-queue n              admission queue bound beyond the pool (default 64)
//	-queue-wait d         max time a request waits for a worker slot (default 5s)
//	-default-timeout d    per-request budget when none is given (default 10s)
//	-max-timeout d        clamp on requested per-request timeouts (default 60s)
//	-max-tuples n         default materialized-tuple budget (0 = none)
//	-max-derivations n    default derivation budget (0 = none)
//	-max-parallelism n    clamp on per-request evaluation parallelism
//	                      (default GOMAXPROCS; requests tune it via the
//	                      "parallelism" field, unset = auto)
//	-max-partitions n     clamp on per-request hash-partition fan-out
//	                      (default 64; requests tune it via the
//	                      "partitions" field, unset = follow parallelism)
//	-session-ttl d        evict sessions idle longer than this (default 15m)
//	-drain-timeout d      grace period for in-flight requests on shutdown (default 10s)
//	-wal file             write-ahead log for durable mutations; replayed
//	                      (together with file.snapshot, if present) on startup
//	-wal-checkpoint n     checkpoint-and-truncate the WAL every n entries
//	                      (default 1024; negative disables)
//	-follow url           run as a hot standby of the primary at url:
//	                      mutations are refused (403 read_only), state is
//	                      replicated over /v1/replication/stream, and
//	                      /readyz reflects catch-up. Pair with -wal so the
//	                      standby resumes from its position after restart.
//	-replica-lease d      max stream silence before the primary counts as
//	                      stalled: readiness drops and the follower
//	                      reconnects (default 10s)
//	-replica-max-lag n    readiness bound: more than n entries behind the
//	                      primary reports not ready (default 1024)
//	-chaos spec           arm a fault injection point (repeatable), e.g.
//	                      "wal.append.sync:after=100,err=EIO" or
//	                      "repl.stream.send:count=3". For fault drills and
//	                      the chaos harness; never set in production.
//	-engine e             storage engine: mem (default) or disk. The disk
//	                      engine keeps the base EDB in segment files under
//	                      -data-dir behind a bounded block cache (EDBs
//	                      larger than RAM), loads it on startup (with the
//	                      WAL tail replayed on top), and checkpoints by
//	                      writing a new segment generation there.
//	-data-dir dir         disk-engine data directory
//	-cache-mb n           disk-engine block cache budget in MiB (default 64)
//	-plan-cache           cache prepared goal queries and their stratum
//	                      plans across requests (default true); answers
//	                      are identical with it off — it is the
//	                      performance escape hatch
//	-magic                route goal queries through the magic-sets
//	                      demand rewrite (default true); answers are
//	                      identical with it off — it is the performance
//	                      escape hatch (per-request opt-out: "magic":
//	                      false in the query body)
//	-pprof addr           serve net/http/pprof on a SEPARATE listener at
//	                      addr (e.g. localhost:6060); empty disables. Kept
//	                      off the query listener so profiling endpoints
//	                      are never exposed alongside the public API.
//
// SIGINT/SIGTERM triggers a graceful drain: /readyz flips to 503 so
// load balancers stop routing here (liveness at /healthz stays 200),
// new evaluations are refused, replication streams end with a
// resumable end-of-stream frame, and in-flight requests get
// -drain-timeout to finish before the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"idlog"
	"idlog/internal/fault"
	"idlog/internal/replica"
	"idlog/internal/server"
	"idlog/internal/storage"
)

// daemonConfig is the parsed command line.
type daemonConfig struct {
	addr         string
	pprofAddr    string
	programFiles []string
	factFiles    []string
	loadSnap     string
	sessionName  string
	walPath      string
	drainTimeout time.Duration
	follow       string
	replicaLease time.Duration
	replicaLag   uint64
	server       server.Config
}

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

// Set implements flag.Value.
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// parseFlags parses args into a daemonConfig.
func parseFlags(args []string, stderr io.Writer) (*daemonConfig, error) {
	dc := &daemonConfig{}
	fs := flag.NewFlagSet("idlogd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&dc.addr, "addr", ":8344", "listen address")
	fs.StringVar(&dc.pprofAddr, "pprof", "", "serve net/http/pprof on a separate listener at this address (empty = off)")
	var factFiles stringList
	fs.Var(&factFiles, "facts", "fact file preloaded into the startup session (repeatable)")
	fs.StringVar(&dc.loadSnap, "load", "", "binary snapshot preloaded into the startup session")
	fs.StringVar(&dc.sessionName, "session", "default", "name of the startup session")
	fs.IntVar(&dc.server.MaxConcurrent, "max-concurrent", runtime.GOMAXPROCS(0), "worker-pool size")
	fs.IntVar(&dc.server.MaxQueue, "queue", 64, "admission queue bound beyond the pool")
	fs.DurationVar(&dc.server.QueueWait, "queue-wait", 5*time.Second, "max time a request waits for a worker slot")
	fs.DurationVar(&dc.server.DefaultTimeout, "default-timeout", 10*time.Second, "per-request budget when none is given")
	fs.DurationVar(&dc.server.MaxTimeout, "max-timeout", 60*time.Second, "clamp on requested per-request timeouts")
	fs.IntVar(&dc.server.DefaultMaxTuples, "max-tuples", 0, "default materialized-tuple budget (0 = none)")
	fs.IntVar(&dc.server.DefaultMaxDerivations, "max-derivations", 0, "default derivation budget (0 = none)")
	fs.IntVar(&dc.server.MaxParallelism, "max-parallelism", runtime.GOMAXPROCS(0), "clamp on per-request evaluation parallelism")
	fs.IntVar(&dc.server.MaxPartitions, "max-partitions", 64, "clamp on per-request hash-partition fan-out")
	fs.DurationVar(&dc.server.SessionTTL, "session-ttl", 15*time.Minute, "evict sessions idle longer than this")
	fs.StringVar(&dc.walPath, "wal", "", "write-ahead log for durable mutations (replayed on startup)")
	fs.IntVar(&dc.server.WALCheckpointEntries, "wal-checkpoint", 1024, "checkpoint-and-truncate the WAL every n entries (negative disables)")
	fs.DurationVar(&dc.drainTimeout, "drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	fs.StringVar(&dc.follow, "follow", "", "run as a read-only hot standby of the primary at this URL")
	fs.DurationVar(&dc.replicaLease, "replica-lease", 10*time.Second, "max stream silence before the primary counts as stalled")
	fs.Uint64Var(&dc.replicaLag, "replica-max-lag", 1024, "readiness bound on entries behind the primary")
	var chaosSpecs stringList
	fs.Var(&chaosSpecs, "chaos", "arm a fault injection point, e.g. \"wal.append.sync:after=100,err=EIO\" (repeatable)")
	engine := fs.String("engine", "mem", "storage engine: mem (in-memory) or disk (segment files in -data-dir)")
	dataDir := fs.String("data-dir", "", "disk-engine data directory (with -engine=disk)")
	cacheMB := fs.Int("cache-mb", 64, "disk-engine block cache budget in MiB")
	planCache := fs.Bool("plan-cache", true, "cache prepared goal queries and their stratum plans across requests")
	magic := fs.Bool("magic", true, "route goal queries through the magic-sets demand rewrite")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	dc.server.NoPlanCache = !*planCache
	dc.server.NoMagic = !*magic
	kind, err := storage.ParseEngineKind(*engine)
	if err != nil {
		fmt.Fprintln(stderr, "idlogd:", err)
		return nil, err
	}
	if kind == storage.EngineDisk && *dataDir == "" {
		err := fmt.Errorf("-engine=disk requires -data-dir")
		fmt.Fprintln(stderr, "idlogd:", err)
		return nil, err
	}
	dc.server.Engine = storage.Engine{Kind: kind, Dir: *dataDir, CacheBytes: int64(*cacheMB) << 20}
	if len(chaosSpecs) > 0 {
		reg := fault.New()
		for _, spec := range chaosSpecs {
			name, f, err := fault.ParseSpec(spec)
			if err != nil {
				fmt.Fprintln(stderr, "idlogd:", err)
				return nil, err
			}
			reg.Arm(name, f)
		}
		dc.server.Faults = reg
	}
	if dc.follow != "" {
		// A standby never takes writes of its own: every mutation it
		// holds must have come from the primary's LSN stream.
		dc.server.ReadOnly = true
	}
	dc.factFiles = factFiles
	dc.programFiles = fs.Args()
	return dc, nil
}

// programName derives the registration name from a program path:
// the base name with its extension dropped.
func programName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// buildServer constructs the server and preloads programs, facts, and
// snapshots per the config.
func buildServer(dc *daemonConfig) (*server.Server, error) {
	s := server.New(dc.server)
	ok := false
	defer func() {
		if !ok {
			s.Close()
		}
	}()
	for _, f := range dc.programFiles {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		if err := s.RegisterProgram(programName(f), string(src)); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
	}
	if dc.loadSnap != "" || len(dc.factFiles) > 0 {
		db := idlog.NewDatabase()
		if dc.loadSnap != "" {
			loaded, err := storage.LoadFile(dc.loadSnap)
			if err != nil {
				return nil, err
			}
			db = loaded
		}
		for _, f := range dc.factFiles {
			src, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			if err := idlog.AddFactsText(db, string(src)); err != nil {
				return nil, fmt.Errorf("%s: %w", f, err)
			}
		}
		if err := s.CreateSessionDB(dc.sessionName, db); err != nil {
			return nil, err
		}
	}
	if dc.walPath != "" {
		// OpenWAL loads the engine's checkpoint if present — the
		// <wal>.snapshot file, or the disk engine's data directory —
		// superseding an empty base, replays surviving entries, and
		// keeps the log open for durable mutations.
		if err := s.OpenWAL(dc.walPath); err != nil {
			return nil, fmt.Errorf("wal %s: %w", dc.walPath, err)
		}
	} else if err := s.LoadDiskBase(); err != nil {
		return nil, fmt.Errorf("data dir %s: %w", dc.server.Engine.Dir, err)
	}
	ok = true
	return s, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	dc, err := parseFlags(args, stderr)
	if err != nil {
		return 2
	}
	s, err := buildServer(dc)
	if err != nil {
		fmt.Fprintln(stderr, "idlogd:", err)
		return 1
	}
	defer s.Close()

	ln, err := net.Listen("tcp", dc.addr)
	if err != nil {
		fmt.Fprintln(stderr, "idlogd:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: s.Handler()}

	if dc.pprofAddr != "" {
		// pprof gets its own listener and mux so the profiling surface
		// can be bound to loopback while the API listens publicly.
		pln, err := net.Listen("tcp", dc.pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "idlogd: pprof:", err)
			return 1
		}
		defer pln.Close()
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() { _ = http.Serve(pln, pmux) }()
		fmt.Fprintf(stdout, "idlogd: pprof on %s\n", pln.Addr())
	}

	var fol *replica.Follower
	if dc.follow != "" {
		fol = replica.New(s, replica.Config{
			Primary: dc.follow,
			Lease:   dc.replicaLease,
			MaxLag:  dc.replicaLag,
			Faults:  dc.server.Faults,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stderr, "idlogd: replica: "+format+"\n", args...)
			},
		})
		fol.Start()
		fmt.Fprintf(stdout, "idlogd: following %s\n", dc.follow)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		fmt.Fprintln(stderr, "idlogd: draining")
		if fol != nil {
			fol.Stop()
		}
		s.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), dc.drainTimeout)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(stdout, "idlogd: listening on %s (%d programs)\n", ln.Addr(), len(dc.programFiles))
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(stderr, "idlogd:", err)
		return 1
	}
	<-done
	return 0
}
