package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestProgramName(t *testing.T) {
	for in, want := range map[string]string{
		"tc.idl":                    "tc",
		"examples/programs/tc.idl":  "tc",
		"/abs/path/sample-dept.idl": "sample-dept",
		"noext":                     "noext",
	} {
		if got := programName(in); got != want {
			t.Errorf("programName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseFlags(t *testing.T) {
	dc, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-max-concurrent", "3", "-session-ttl", "1m",
		"-pprof", "127.0.0.1:0",
		"-facts", "a.facts", "-facts", "b.facts", "p1.idl", "p2.idl",
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if dc.addr != "127.0.0.1:0" || dc.server.MaxConcurrent != 3 || dc.server.SessionTTL != time.Minute {
		t.Fatalf("parsed config = %+v", dc)
	}
	if dc.pprofAddr != "127.0.0.1:0" {
		t.Fatalf("pprofAddr = %q", dc.pprofAddr)
	}
	if len(dc.factFiles) != 2 || len(dc.programFiles) != 2 {
		t.Fatalf("files = %v / %v", dc.factFiles, dc.programFiles)
	}
}

// TestBuildServerAndServe preloads a program file and a fact file, then
// round-trips a query over HTTP the way the daemon would serve it.
func TestBuildServerAndServe(t *testing.T) {
	dir := t.TempDir()
	progFile := filepath.Join(dir, "tc.idl")
	if err := os.WriteFile(progFile, []byte("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- tc(X, Y), edge(Y, Z).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	factFile := filepath.Join(dir, "edges.facts")
	if err := os.WriteFile(factFile, []byte("edge(a, b). edge(b, c).\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	dc, err := parseFlags([]string{"-facts", factFile, "-session", "boot", progFile}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := buildServer(dc)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{
		"program": "tc", "session": "boot", "predicates": []string{"tc"},
	})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query: status %d", resp.StatusCode)
	}
	var qr struct {
		Relations map[string]struct {
			Text string `json:"text"`
		} `json:"relations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if got, want := qr.Relations["tc"].Text, "tc{(a, b), (a, c), (b, c)}"; got != want {
		t.Fatalf("tc = %q, want %q", got, want)
	}
}

func TestBuildServerBadProgram(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.idl")
	if err := os.WriteFile(bad, []byte("p(x :- q(x).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dc, err := parseFlags([]string{bad}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buildServer(dc); err == nil {
		t.Fatal("expected error for unparsable program")
	}
}

// TestBuildServerWAL boots the daemon with -wal, mutates the base
// database over HTTP, and verifies a second boot on the same WAL path
// replays the acknowledged state.
func TestBuildServerWAL(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "idlogd.wal")
	boot := func() *httptest.Server {
		dc, err := parseFlags([]string{"-wal", walPath, "-wal-checkpoint", "-1"}, os.Stderr)
		if err != nil {
			t.Fatal(err)
		}
		s, err := buildServer(dc)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		return ts
	}

	ts1 := boot()
	body, _ := json.Marshal(map[string]string{"inserts": "edge(a, b). edge(b, c)."})
	resp, err := http.Post(ts1.URL+"/v1/facts", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutation status %d", resp.StatusCode)
	}
	ts1.Close()

	ts2 := boot()
	q, _ := json.Marshal(map[string]any{
		"source":     "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).",
		"predicates": []string{"tc"},
	})
	resp, err = http.Post(ts2.URL+"/v1/query", "application/json", bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr struct {
		Relations map[string]struct {
			Tuples [][]string `json:"tuples"`
		} `json:"relations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if got := len(qr.Relations["tc"].Tuples); got != 3 {
		t.Fatalf("replayed tc has %d tuples, want 3: %+v", got, qr)
	}
}
