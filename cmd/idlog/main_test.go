package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"idlog"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadFacts(t *testing.T) {
	path := writeFile(t, "facts.idl", `
		emp(joe, toys).
		emp(sue, shoes).
		level(joe, 3).
	`)
	db := idlog.NewDatabase()
	if err := loadFacts(db, path); err != nil {
		t.Fatal(err)
	}
	if db.Relation("emp").Len() != 2 {
		t.Fatalf("emp = %v", db.Relation("emp"))
	}
	lvl := db.Relation("level")
	if lvl.Len() != 1 || !lvl.Contains(idlog.Tuple{idlog.Str("joe"), idlog.Int(3)}) {
		t.Fatalf("level = %v", lvl)
	}
}

func TestLoadFactsRejectsRules(t *testing.T) {
	path := writeFile(t, "facts.idl", "p(X) :- q(X).")
	if err := loadFacts(idlog.NewDatabase(), path); err == nil {
		t.Fatalf("rule in fact file not rejected")
	}
}

func TestLoadFactsRejectsNonGround(t *testing.T) {
	path := writeFile(t, "facts.idl", "p(X).")
	if err := loadFacts(idlog.NewDatabase(), path); err == nil {
		t.Fatalf("non-ground fact not rejected")
	}
}

func TestLoadFactsMissingFile(t *testing.T) {
	if err := loadFacts(idlog.NewDatabase(), "/nonexistent/facts.idl"); err == nil {
		t.Fatalf("missing file not reported")
	}
}

func TestExitCodeMapping(t *testing.T) {
	prog, err := idlog.Parse(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := idlog.NewDatabase()
	for i := int64(0); i < 50; i++ {
		if err := db.Add("e", idlog.Ints(i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	errFor := func(ctx context.Context, opts ...idlog.Option) error {
		_, err := prog.EvalContext(ctx, db, opts...)
		return err
	}
	_, parseErr := idlog.Parse("p(X :-")
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, exitOK},
		{"plain", fmt.Errorf("disk on fire"), exitError},
		{"parse", parseErr, exitError},
		{"canceled", errFor(canceled), exitCanceled},
		{"timeout", errFor(context.Background(), idlog.WithTimeout(time.Nanosecond)), exitTimeout},
		{"derivations", errFor(context.Background(), idlog.WithMaxDerivations(5)), exitBudget},
		{"tuples", errFor(context.Background(), idlog.WithMaxTuples(5)), exitBudget},
	}
	for _, tc := range cases {
		if tc.want != exitOK && tc.err == nil {
			t.Fatalf("%s: expected a triggering error", tc.name)
		}
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("%s: exitCode(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
	// Enumeration trips map through the same taxonomy.
	_, err = prog.Enumerate(db, []string{"tc"}, idlog.WithTimeout(time.Nanosecond))
	if err == nil || exitCode(err) != exitTimeout {
		t.Errorf("enumerate timeout: err = %v, exitCode = %d", err, exitCode(err))
	}
	var ie *idlog.Error
	if !errors.As(errFor(canceled), &ie) || ie.Code != idlog.CodeCanceled {
		t.Errorf("canceled run did not produce a typed error")
	}
}

func TestStringListFlag(t *testing.T) {
	var s stringList
	_ = s.Set("a")
	_ = s.Set("b")
	if s.String() != "a,b" || len(s) != 2 {
		t.Fatalf("stringList = %v", s)
	}
}
