package main

import (
	"os"
	"path/filepath"
	"testing"

	"idlog"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadFacts(t *testing.T) {
	path := writeFile(t, "facts.idl", `
		emp(joe, toys).
		emp(sue, shoes).
		level(joe, 3).
	`)
	db := idlog.NewDatabase()
	if err := loadFacts(db, path); err != nil {
		t.Fatal(err)
	}
	if db.Relation("emp").Len() != 2 {
		t.Fatalf("emp = %v", db.Relation("emp"))
	}
	lvl := db.Relation("level")
	if lvl.Len() != 1 || !lvl.Contains(idlog.Tuple{idlog.Str("joe"), idlog.Int(3)}) {
		t.Fatalf("level = %v", lvl)
	}
}

func TestLoadFactsRejectsRules(t *testing.T) {
	path := writeFile(t, "facts.idl", "p(X) :- q(X).")
	if err := loadFacts(idlog.NewDatabase(), path); err == nil {
		t.Fatalf("rule in fact file not rejected")
	}
}

func TestLoadFactsRejectsNonGround(t *testing.T) {
	path := writeFile(t, "facts.idl", "p(X).")
	if err := loadFacts(idlog.NewDatabase(), path); err == nil {
		t.Fatalf("non-ground fact not rejected")
	}
}

func TestLoadFactsMissingFile(t *testing.T) {
	if err := loadFacts(idlog.NewDatabase(), "/nonexistent/facts.idl"); err == nil {
		t.Fatalf("missing file not reported")
	}
}

func TestStringListFlag(t *testing.T) {
	var s stringList
	_ = s.Set("a")
	_ = s.Set("b")
	if s.String() != "a,b" || len(s) != 2 {
		t.Fatalf("stringList = %v", s)
	}
}
