// Command idlog evaluates IDLOG / DATALOG^C programs from files.
//
// Usage:
//
//	idlog [flags] program.idl
//	idlog -i                 # interactive session
//
//	-facts file      fact file(s) loaded as input relations (repeatable)
//	-load file.idb   binary snapshot loaded as input relations
//	-wal file        (with -i) durable write-ahead log: replayed into the
//	                 session database on startup; :assert/:retract append
//	                 to it before acknowledging
//	-save file.idb   write the result relations to a binary snapshot
//	-query p,q       print only these predicates (default: all outputs)
//	-seed n          use the seeded random oracle (default: sorted/deterministic)
//	-enumerate       enumerate ALL answers of the query predicates
//	-max-runs n      budget for -enumerate (default 100000)
//	-timeout d       wall-clock budget for the run, e.g. 5s, 300ms (0 = none)
//	-max-tuples n    materialized-tuple budget, a memory ceiling (0 = none)
//	-max-derivations n  derivation budget, a work ceiling (0 = none)
//	-parallel n      evaluate fixpoints on n worker goroutines (answers
//	                 stay byte-identical to sequential; default 0 = auto,
//	                 GOMAXPROCS clamped to 8; 1 = sequential)
//	-partitions n    hash-partition recursive delta passes n ways with
//	                 partition-local probe indexes (default 0 = follow
//	                 -parallel; 1 = off; answers stay byte-identical)
//	-plan            print the join plans the engine would use and exit
//	-planner=false   disable the cost-based join planner (bodies run in
//	                 the analysis safety order; same model, for ablation)
//	-stream=false    disable the streaming get-next executor (bodies run
//	                 by the legacy recursive walk; same model, for ablation)
//	-partial         on a tripped budget/timeout, still print the partial model
//	-optimize p      print the §4-optimized program w.r.t. p and exit
//	-show            print the (choice-translated) program before running
//	-stats           print evaluation statistics
//	-engine e        storage engine: mem (default) or disk, which reads the
//	                 EDB from segment files in -data-dir through a bounded
//	                 block cache so databases larger than RAM evaluate
//	-data-dir dir    disk-engine data directory
//	-cache-mb n      disk-engine block cache budget in MiB (default 64)
//	-bulk-load file  stream a fact file into a fresh -data-dir database
//	                 (never materializing it in memory) and exit
//
// Ctrl-C (SIGINT) cancels the run gracefully: the engine stops at the
// next guard checkpoint and exits with the cancellation code.
//
// Exit codes:
//
//	0  success
//	1  program, input, or I/O error
//	2  usage error
//	3  canceled (SIGINT or context cancellation)
//	4  timeout (deadline or -timeout budget)
//	5  resource budget exhausted (-max-tuples, -max-derivations, -max-runs)
//	6  internal engine error (recovered panic)
//
// Fact files contain ground facts in program syntax, e.g.:
//
//	emp(joe, toys).
//	emp(sue, shoes).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"idlog"
	"idlog/internal/ast"
	"idlog/internal/parser"
	"idlog/internal/storage"
	"idlog/internal/wal"
)

// Exit codes; see the package comment.
const (
	exitOK       = 0
	exitError    = 1
	exitUsage    = 2
	exitCanceled = 3
	exitTimeout  = 4
	exitBudget   = 5
	exitInternal = 6
)

// exitCode maps an error to the CLI's exit code via the typed taxonomy.
func exitCode(err error) int {
	if err == nil {
		return exitOK
	}
	var ie *idlog.Error
	if errors.As(err, &ie) {
		switch ie.Code {
		case idlog.CodeCanceled:
			return exitCanceled
		case idlog.CodeDeadlineExceeded:
			return exitTimeout
		case idlog.CodeResourceExhausted:
			return exitBudget
		case idlog.CodeInternal:
			return exitInternal
		}
	}
	return exitError
}

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

// Set implements flag.Value.
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var factFiles stringList
	flag.Var(&factFiles, "facts", "fact file loaded as input relations (repeatable)")
	loadSnap := flag.String("load", "", "binary snapshot loaded as input relations")
	saveSnap := flag.String("save", "", "write the result relations to a binary snapshot")
	query := flag.String("query", "", "comma-separated predicates to print (default: all outputs)")
	seed := flag.Uint64("seed", 0, "seed for the random oracle")
	useSeed := flag.Bool("random", false, "use the seeded random oracle (with -seed)")
	enumerate := flag.Bool("enumerate", false, "enumerate all answers of the query predicates")
	maxRuns := flag.Int("max-runs", 100000, "run budget for -enumerate")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none)")
	maxTuples := flag.Int("max-tuples", 0, "materialized-tuple budget, a memory ceiling (0 = none)")
	maxDerivations := flag.Int("max-derivations", 0, "derivation budget, a work ceiling (0 = none)")
	parallel := flag.Int("parallel", 0, "worker goroutines for fixpoint evaluation (0 = auto, 1 = sequential)")
	partitions := flag.Int("partitions", 0, "hash-partition fan-out for recursive delta passes (0 = follow -parallel, 1 = off)")
	partial := flag.Bool("partial", false, "on a tripped budget/timeout, still print the partial model")
	optimize := flag.String("optimize", "", "print the optimized program w.r.t. this predicate and exit")
	show := flag.Bool("show", false, "print the evaluated (choice-translated) program")
	stats := flag.Bool("stats", false, "print evaluation statistics")
	plan := flag.Bool("plan", false, "print the join plans the engine would use and exit")
	planner := flag.Bool("planner", true, "enable the cost-based join planner")
	stream := flag.Bool("stream", true, "enable the streaming get-next executor")
	magic := flag.Bool("magic", true, "enable the magic-sets demand rewrite for interactive goal queries")
	interactive := flag.Bool("i", false, "start an interactive session (REPL)")
	walPath := flag.String("wal", "", "durable write-ahead log for the interactive session (with -i)")
	explain := flag.String("explain", "", "print the derivation tree of a ground atom, e.g. 'tc(a, c)'")
	engine := flag.String("engine", "mem", "storage engine: mem (in-memory) or disk (segment files in -data-dir)")
	dataDir := flag.String("data-dir", "", "disk-engine data directory (with -engine=disk or -bulk-load)")
	cacheMB := flag.Int("cache-mb", 64, "disk-engine block cache budget in MiB")
	bulkLoad := flag.String("bulk-load", "", "stream a fact file into a fresh -data-dir database and exit")
	flag.Parse()

	kind, err := storage.ParseEngineKind(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "idlog:", err)
		os.Exit(exitUsage)
	}
	if *bulkLoad != "" {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "idlog: -bulk-load requires -data-dir")
			os.Exit(exitUsage)
		}
		stats, err := storage.BulkLoadFile(*dataDir, *bulkLoad)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d tuple(s) into %d relation(s) (%d duplicate(s) dropped)\n",
			stats.Tuples, stats.Relations, stats.Duplicates)
		return
	}
	if kind == storage.EngineDisk && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "idlog: -engine=disk requires -data-dir")
		os.Exit(exitUsage)
	}
	eng := storage.Engine{Kind: kind, Dir: *dataDir, CacheBytes: int64(*cacheMB) << 20}

	if *interactive {
		var preload []*ast.Clause
		if *loadSnap != "" {
			db, err := storage.LoadFile(*loadSnap)
			if err != nil {
				fatal(err)
			}
			preload = append(preload, databaseClauses(db)...)
		}
		for _, f := range factFiles {
			src, err := os.ReadFile(f)
			if err != nil {
				fatal(err)
			}
			prog, err := parser.Program(string(src))
			if err != nil {
				fatal(err)
			}
			preload = append(preload, prog.Clauses...)
		}
		db := idlog.NewDatabase()
		if eng.Disk() {
			loaded, err := storage.OpenDir(eng.Dir, eng.Cache())
			if err != nil && !os.IsNotExist(err) {
				fatal(err)
			}
			if err == nil {
				db = loaded
			}
		}
		var log *wal.Log
		if *walPath != "" {
			l, recs, err := wal.Open(*walPath)
			if err != nil {
				fatal(err)
			}
			defer l.Close()
			// Replay the surviving prefix; records from idlogd WALs
			// carry session names, which the REPL flattens into its
			// single database.
			for _, rec := range recs {
				next, _, err := db.Apply(rec.Inserts, rec.Deletes)
				if err != nil {
					fatal(fmt.Errorf("wal replay: %w", err))
				}
				db = next
			}
			if len(recs) > 0 {
				fmt.Printf("replayed %d wal record(s)\n", len(recs))
			}
			log = l
		}
		runREPL(os.Stdin, os.Stdout, replLimits{
			timeout:        *timeout,
			maxTuples:      *maxTuples,
			maxDerivations: *maxDerivations,
			parallel:       *parallel,
			partitions:     *partitions,
			noPlanner:      !*planner,
			noStream:       !*stream,
			noMagic:        !*magic,
		}, db, log, preload...)
		return
	}
	if *walPath != "" {
		fmt.Fprintln(os.Stderr, "idlog: -wal requires -i (interactive session)")
		os.Exit(exitUsage)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: idlog [flags] program.idl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := idlog.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	if *optimize != "" {
		opt, err := prog.Optimize(*optimize)
		if err != nil {
			fatal(err)
		}
		fmt.Print(opt.String())
		return
	}
	if *show {
		fmt.Print(prog.String())
		fmt.Println("%----")
	}

	db := idlog.NewDatabase()
	if eng.Disk() {
		loaded, err := storage.OpenDir(eng.Dir, eng.Cache())
		if err != nil {
			fatal(err)
		}
		db = loaded
	}
	if *loadSnap != "" {
		loaded, err := storage.LoadFile(*loadSnap)
		if err != nil {
			fatal(err)
		}
		if eng.Disk() {
			// Overlay the snapshot's relations onto the disk-resident EDB.
			for _, name := range loaded.Names() {
				db.SetRelation(name, loaded.Relation(name))
			}
		} else {
			db = loaded
		}
	}
	for _, f := range factFiles {
		if err := loadFacts(db, f); err != nil {
			fatal(err)
		}
	}

	preds := prog.OutputPredicates()
	if *query != "" {
		preds = strings.Split(*query, ",")
	}

	var opts []idlog.Option
	if *useSeed || *seed != 0 {
		opts = append(opts, idlog.WithSeed(*seed))
	}
	if *explain != "" {
		opts = append(opts, idlog.WithTrace())
	}
	if *timeout > 0 {
		opts = append(opts, idlog.WithTimeout(*timeout))
	}
	if *maxTuples > 0 {
		opts = append(opts, idlog.WithMaxTuples(*maxTuples))
	}
	if *maxDerivations > 0 {
		opts = append(opts, idlog.WithMaxDerivations(*maxDerivations))
	}
	if *parallel > 0 {
		opts = append(opts, idlog.WithParallelism(*parallel))
	}
	if *partitions > 0 {
		opts = append(opts, idlog.WithPartitions(*partitions))
	}
	if !*planner {
		opts = append(opts, idlog.WithPlanner(false))
	}
	if !*stream {
		opts = append(opts, idlog.WithStreaming(false))
	}

	// Ctrl-C cancels the evaluation at the next guard checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *plan {
		out, err := prog.ExplainPlanContext(ctx, db, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	if *enumerate {
		answers, err := prog.EnumerateContext(ctx, db, preds, append(opts, idlog.WithMaxRuns(*maxRuns))...)
		if err != nil && (!*partial || len(answers) == 0) {
			fatal(err)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "idlog: warning: enumeration incomplete (%v); printing answers found so far\n", err)
		}
		fmt.Printf("%d answers:\n", len(answers))
		for i, a := range answers {
			fmt.Printf("answer %d:\n", i+1)
			for _, p := range preds {
				fmt.Printf("  %v\n", a.Relations[p])
			}
		}
		if err != nil {
			os.Exit(exitCode(err))
		}
		return
	}

	res, err := prog.EvalContext(ctx, db, opts...)
	if err != nil {
		if !*partial || res == nil || !res.Incomplete {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "idlog: warning: evaluation incomplete after %d strata (%v); printing the partial model\n",
			res.CompletedStrata, err)
	}
	if *saveSnap != "" && err == nil {
		out := idlog.NewDatabase()
		for _, p := range prog.OutputPredicates() {
			if r := res.Relation(p); r != nil {
				out.SetRelation(p, r)
			}
		}
		if err := storage.SaveFile(*saveSnap, out); err != nil {
			fatal(err)
		}
	}
	for _, p := range preds {
		r := res.Relation(p)
		if r == nil {
			fmt.Fprintf(os.Stderr, "warning: unknown predicate %s\n", p)
			continue
		}
		fmt.Println(r)
	}
	if err != nil {
		if *stats {
			fmt.Fprintln(os.Stderr, "stats:", res.Stats)
		}
		os.Exit(exitCode(err))
	}
	if *explain != "" {
		pred, tuple, err := parseGroundAtom(*explain)
		if err != nil {
			fatal(err)
		}
		tree, err := res.Explain(pred, tuple, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Print(tree)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, "stats:", res.Stats)
	}
}

// parseGroundAtom parses "pred(c1, c2)" into its predicate and tuple.
func parseGroundAtom(src string) (string, idlog.Tuple, error) {
	c, err := parser.Clause(strings.TrimSuffix(strings.TrimSpace(src), ".") + ".")
	if err != nil {
		return "", nil, err
	}
	if !c.IsFact() {
		return "", nil, fmt.Errorf("%q is not a ground atom", src)
	}
	tuple := make(idlog.Tuple, len(c.Head.Args))
	for i, t := range c.Head.Args {
		cst, ok := t.(ast.Const)
		if !ok {
			return "", nil, fmt.Errorf("%q has a non-ground argument", src)
		}
		tuple[i] = cst.Val
	}
	return c.Head.Pred, tuple, nil
}

// loadFacts parses a fact file and adds each ground fact to db.
func loadFacts(db *idlog.Database, path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := parser.Program(string(src))
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, c := range prog.Clauses {
		if !c.IsFact() {
			return fmt.Errorf("%s: %q is not a fact", path, c)
		}
		tuple := make(idlog.Tuple, len(c.Head.Args))
		for i, t := range c.Head.Args {
			cst, ok := t.(ast.Const)
			if !ok {
				return fmt.Errorf("%s: fact %q has a non-ground argument", path, c)
			}
			tuple[i] = cst.Val
		}
		if err := db.Add(c.Head.Pred, tuple); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

// databaseClauses renders a database's tuples as ground fact clauses
// for preloading an interactive session.
func databaseClauses(db *idlog.Database) []*ast.Clause {
	var out []*ast.Clause
	for _, name := range db.Names() {
		for _, t := range db.Relation(name).Sorted() {
			head := &ast.Atom{Pred: name}
			for _, v := range t {
				head.Args = append(head.Args, ast.Const{Val: v})
			}
			out = append(out, &ast.Clause{Head: head})
		}
	}
	return out
}

// fatal reports err and exits with the code its taxonomy class maps to.
func fatal(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "idlog:") {
		msg = "idlog: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(exitCode(err))
}
