package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"idlog"
	"idlog/internal/ast"
	"idlog/internal/parser"
	"idlog/internal/wal"
)

// replLimits are the session's per-query resource budgets. Zero means
// unlimited. They seed from the CLI's -timeout / -max-tuples /
// -max-derivations flags and are adjustable with :limits.
type replLimits struct {
	timeout        time.Duration
	maxTuples      int
	maxDerivations int
	parallel       int
	partitions     int
	noPlanner      bool
	noStream       bool
	noMagic        bool
}

// options renders the limits as engine options.
func (l replLimits) options() []idlog.Option {
	var opts []idlog.Option
	if l.timeout > 0 {
		opts = append(opts, idlog.WithTimeout(l.timeout))
	}
	if l.maxTuples > 0 {
		opts = append(opts, idlog.WithMaxTuples(l.maxTuples))
	}
	if l.maxDerivations > 0 {
		opts = append(opts, idlog.WithMaxDerivations(l.maxDerivations))
	}
	if l.parallel > 0 {
		opts = append(opts, idlog.WithParallelism(l.parallel))
	}
	if l.partitions > 0 {
		opts = append(opts, idlog.WithPartitions(l.partitions))
	}
	if l.noPlanner {
		opts = append(opts, idlog.WithPlanner(false))
	}
	if l.noStream {
		opts = append(opts, idlog.WithStreaming(false))
	}
	if l.noMagic {
		opts = append(opts, idlog.WithMagic(false))
	}
	return opts
}

func (l replLimits) String() string {
	show := func(n int) string {
		if n <= 0 {
			return "off"
		}
		return strconv.Itoa(n)
	}
	t := "off"
	if l.timeout > 0 {
		t = l.timeout.String()
	}
	p := "auto"
	if l.parallel == 1 {
		p = "1 (sequential)"
	} else if l.parallel > 1 {
		p = strconv.Itoa(l.parallel)
	}
	pt := "auto"
	if l.partitions == 1 {
		pt = "1 (off)"
	} else if l.partitions > 1 {
		pt = strconv.Itoa(l.partitions)
	}
	pl := "on"
	if l.noPlanner {
		pl = "off"
	}
	st := "on"
	if l.noStream {
		st = "off"
	}
	mg := "on"
	if l.noMagic {
		mg = "off"
	}
	return fmt.Sprintf("limits: timeout=%s, max-tuples=%s, max-derivations=%s, parallel=%s, partitions=%s, planner=%s, stream=%s, magic=%s",
		t, show(l.maxTuples), show(l.maxDerivations), p, pt, pl, st, mg)
}

// repl is the interactive session state. Clauses hold the session
// program; db holds the live extensional database mutated by :assert
// and :retract (and replayed from -wal on startup). Queries see both.
type repl struct {
	clauses []*ast.Clause
	db      *idlog.Database
	wal     *wal.Log
	seed    uint64
	random  bool
	limits  replLimits
	out     io.Writer
}

// replDBListMax bounds how many tuples :db prints per relation; beyond
// it only the size line appears (disk-backed EDBs can exceed RAM).
const replDBListMax = 100

const replHelp = `commands:
  fact or clause ending in '.'   add to the session program
  ?- body.                       query: evaluate and print answers
  :list                          print the session program
  :assert f(a, b). g(c).         insert ground facts into the live database
  :retract f(a, b).              delete ground facts from the live database
  :db                            print the live database relations with
                                 sizes (and disk-resident tuple counts)
  :load FILE                     load clauses/facts from a file
  :seed N                        use the random oracle with seed N
  :sorted                        back to the deterministic oracle
  :plan body.                    print the join plans a query would use
                                 (body order, probe columns, estimated rows)
  :limits [KEY VALUE ...]        show or set per-query budgets; keys:
                                 timeout (duration), max-tuples,
                                 max-derivations (0 = off), parallel
                                 (worker goroutines, 0 = auto,
                                 1 = sequential), partitions (hash
                                 fan-out for recursive delta passes,
                                 0 = follow parallel, 1 = off),
                                 planner (on/off), stream (on/off),
                                 magic (on/off: goal-directed magic-sets
                                 rewriting for bound queries)
  :clear                         drop all session clauses
  :help                          this text
  :quit                          leave
(':' commands also answer to a '\' prefix, e.g. \limits)`

// runREPL reads commands from r until EOF or :quit. Preloaded clauses
// (from -facts / -load) seed the session program; limits seed the
// per-query budgets. db seeds the live database mutated by :assert /
// :retract (nil means empty); log, when non-nil, receives one durable
// record per mutation.
func runREPL(r io.Reader, w io.Writer, limits replLimits, db *idlog.Database, log *wal.Log, preload ...*ast.Clause) {
	if db == nil {
		db = idlog.NewDatabase()
	}
	s := &repl{out: w, clauses: preload, db: db, wal: log, limits: limits}
	fmt.Fprintln(w, "idlog interactive — :help for commands")
	if len(preload) > 0 {
		fmt.Fprintf(w, "preloaded %d clauses\n", len(preload))
	}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(w, "idlog> ")
		} else {
			fmt.Fprint(w, "  ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && trimmed == "" {
			prompt()
			continue
		}
		if buf.Len() == 0 && (strings.HasPrefix(trimmed, ":") || strings.HasPrefix(trimmed, `\`)) {
			if s.command(trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ".") {
			s.input(strings.TrimSpace(buf.String()))
			buf.Reset()
		}
		prompt()
	}
}

// command handles a ':' (or '\') directive; reports whether to quit.
func (s *repl) command(line string) bool {
	fields := strings.Fields(line)
	if strings.HasPrefix(fields[0], `\`) {
		fields[0] = ":" + fields[0][1:]
	}
	switch fields[0] {
	case ":quit", ":q", ":exit":
		fmt.Fprintln(s.out, "bye")
		return true
	case ":help", ":h":
		fmt.Fprintln(s.out, replHelp)
	case ":list":
		for _, c := range s.clauses {
			fmt.Fprintln(s.out, c)
		}
	case ":clear":
		s.clauses = nil
		fmt.Fprintln(s.out, "cleared")
	case ":sorted":
		s.random = false
		fmt.Fprintln(s.out, "oracle: sorted (deterministic)")
	case ":seed":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: :seed N")
			break
		}
		n, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintln(s.out, "bad seed:", fields[1])
			break
		}
		s.seed, s.random = n, true
		fmt.Fprintf(s.out, "oracle: random, seed %d\n", n)
	case ":assert":
		s.mutate(strings.TrimSpace(line[len(fields[0]):]), false)
	case ":retract":
		s.mutate(strings.TrimSpace(line[len(fields[0]):]), true)
	case ":db":
		if len(s.db.Names()) == 0 {
			fmt.Fprintln(s.out, "database empty")
			break
		}
		for _, name := range s.db.Names() {
			r := s.db.Relation(name)
			size := fmt.Sprintf("%s/%d: %d tuple(s)", name, r.Arity(), r.Len())
			if n := r.SourceLen(); n > 0 {
				size += fmt.Sprintf(", %d disk-resident", n)
			}
			fmt.Fprintln(s.out, size)
			// A disk-backed relation can dwarf RAM; list contents only
			// when they plausibly fit a screen.
			if r.Len() <= replDBListMax {
				fmt.Fprintln(s.out, r)
			} else {
				fmt.Fprintf(s.out, "  (contents elided; > %d tuples)\n", replDBListMax)
			}
		}
	case ":plan":
		arg := strings.TrimSpace(line[len(fields[0]):])
		arg = strings.TrimSpace(strings.TrimPrefix(arg, "?-"))
		if arg == "" {
			fmt.Fprintln(s.out, "usage: :plan body, e.g. :plan tc(X, Y)")
			break
		}
		s.planQuery(arg)
	case ":limits":
		s.limitsCommand(fields[1:])
	case ":load":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: :load FILE")
			break
		}
		src, err := os.ReadFile(fields[1])
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			break
		}
		prog, err := parser.Program(string(src))
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			break
		}
		s.clauses = append(s.clauses, prog.Clauses...)
		fmt.Fprintf(s.out, "loaded %d clauses\n", len(prog.Clauses))
	default:
		fmt.Fprintln(s.out, "unknown command; :help")
	}
	return false
}

// limitsCommand shows or sets the per-query budgets: KEY VALUE pairs
// with keys timeout, max-tuples, max-derivations; 0 switches one off.
func (s *repl) limitsCommand(args []string) {
	if len(args)%2 != 0 {
		fmt.Fprintln(s.out, "usage: :limits [timeout D] [max-tuples N] [max-derivations N] [parallel N] [partitions N]")
		return
	}
	next := s.limits
	for i := 0; i < len(args); i += 2 {
		key, val := args[i], args[i+1]
		switch key {
		case "timeout":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				fmt.Fprintln(s.out, "bad timeout:", val)
				return
			}
			next.timeout = d
		case "max-tuples":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				fmt.Fprintln(s.out, "bad max-tuples:", val)
				return
			}
			next.maxTuples = n
		case "max-derivations":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				fmt.Fprintln(s.out, "bad max-derivations:", val)
				return
			}
			next.maxDerivations = n
		case "parallel":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				fmt.Fprintln(s.out, "bad parallel:", val)
				return
			}
			next.parallel = n
		case "partitions":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				fmt.Fprintln(s.out, "bad partitions:", val)
				return
			}
			next.partitions = n
		case "planner":
			switch val {
			case "on", "true", "1":
				next.noPlanner = false
			case "off", "false", "0":
				next.noPlanner = true
			default:
				fmt.Fprintln(s.out, "bad planner (on/off):", val)
				return
			}
		case "stream":
			switch val {
			case "on", "true", "1":
				next.noStream = false
			case "off", "false", "0":
				next.noStream = true
			default:
				fmt.Fprintln(s.out, "bad stream (on/off):", val)
				return
			}
		case "magic":
			switch val {
			case "on", "true", "1":
				next.noMagic = false
			case "off", "false", "0":
				next.noMagic = true
			default:
				fmt.Fprintln(s.out, "bad magic (on/off):", val)
				return
			}
		default:
			fmt.Fprintln(s.out, "unknown limit:", key)
			return
		}
	}
	s.limits = next
	fmt.Fprintln(s.out, s.limits)
}

// mutate applies :assert (retract=false) or :retract (retract=true)
// to the live database. src holds ground facts in program syntax. The
// mutation is copy-on-write: the WAL record (when -wal is active) is
// appended and synced before the new database becomes visible, so an
// acknowledged mutation is never lost to a crash.
func (s *repl) mutate(src string, retract bool) {
	if src == "" {
		verb := ":assert"
		if retract {
			verb = ":retract"
		}
		fmt.Fprintf(s.out, "usage: %s f(a, b). g(c).\n", verb)
		return
	}
	facts, err := idlog.ParseFacts(src)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	inserts, deletes := facts, []idlog.Fact(nil)
	if retract {
		inserts, deletes = nil, facts
	}
	next, delta, err := s.db.Apply(inserts, deletes)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	if s.wal != nil {
		if _, err := s.wal.Append(wal.Record{Inserts: inserts, Deletes: deletes}); err != nil {
			fmt.Fprintln(s.out, "error: wal append:", err)
			return
		}
	}
	s.db = next
	if retract {
		fmt.Fprintf(s.out, "retracted %d fact(s)\n", delta.DeleteCount())
	} else {
		fmt.Fprintf(s.out, "asserted %d fact(s)\n", delta.InsertCount())
	}
}

// input handles a clause or a ?- query.
func (s *repl) input(text string) {
	if rest, ok := strings.CutPrefix(text, "?-"); ok {
		s.query(strings.TrimSpace(rest))
		return
	}
	c, err := parser.Clause(text)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	// Validate the program still analyzes before committing the clause.
	candidate := append(append([]*ast.Clause{}, s.clauses...), c)
	if _, err := idlog.FromAST(&ast.Program{Clauses: candidate}); err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	s.clauses = candidate
	fmt.Fprintln(s.out, "ok")
}

// buildQuery compiles the session program and prepares "?- body"
// against it: Program.Prepare wraps the goal in a fresh answer
// predicate, compiles it, and — for bound goals — attaches the
// magic-sets rewriting, so REPL queries take exactly the demand path
// library callers get.
func (s *repl) buildQuery(body string) (*idlog.PreparedQuery, error) {
	body = strings.TrimSuffix(strings.TrimSpace(body), ".")
	compiled, err := idlog.FromAST(&ast.Program{Clauses: s.clauses})
	if err != nil {
		return nil, err
	}
	return compiled.Prepare(body)
}

// options renders the session's per-query engine options.
func (s *repl) options() []idlog.Option {
	opts := s.limits.options()
	if s.random {
		opts = append(opts, idlog.WithSeed(s.seed))
	}
	return opts
}

// planQuery prints the join plans the engine would use for a query —
// the same program query() evaluates, rendered by ExplainPlan: with the
// demand rewrite active that is the rewritten (adorned + magic)
// program, so the output matches what actually executes.
func (s *repl) planQuery(body string) {
	pq, err := s.buildQuery(body)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	out, err := pq.ExplainPlan(s.db, s.options()...)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprint(s.out, out)
}

// query evaluates "?- body." against the session program: a fresh
// answer predicate collects the bindings of the body's variables.
func (s *repl) query(body string) {
	pq, err := s.buildQuery(body)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	res, err := pq.Query(s.db, s.options()...)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	if len(res.Vars) == 0 {
		if res.Holds() {
			fmt.Fprintln(s.out, "true")
		} else {
			fmt.Fprintln(s.out, "false")
		}
		return
	}
	if len(res.Rows) == 0 {
		fmt.Fprintln(s.out, "no answers")
		return
	}
	for _, t := range res.Rows {
		parts := make([]string, len(res.Vars))
		for i, v := range res.Vars {
			parts[i] = fmt.Sprintf("%s = %s", v, t[i])
		}
		fmt.Fprintln(s.out, strings.Join(parts, ", "))
	}
	fmt.Fprintf(s.out, "%d answer(s)\n", len(res.Rows))
}
