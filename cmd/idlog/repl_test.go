package main

import (
	"strings"
	"testing"

	"idlog"
	"idlog/internal/wal"
)

func runSession(t *testing.T, input string) string {
	t.Helper()
	var out strings.Builder
	runREPL(strings.NewReader(input), &out, replLimits{}, nil, nil)
	return out.String()
}

func TestREPLFactsAndQuery(t *testing.T) {
	out := runSession(t, `
emp(joe, toys).
emp(sue, shoes).
?- emp(X, toys).
:quit
`)
	if !strings.Contains(out, "X = joe") || !strings.Contains(out, "1 answer(s)") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestREPLGroundQueryTrueFalse(t *testing.T) {
	out := runSession(t, `
emp(joe, toys).
?- emp(joe, toys).
?- emp(joe, shoes).
:quit
`)
	if !strings.Contains(out, "true") || !strings.Contains(out, "false") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestREPLRulesAndIDLiterals(t *testing.T) {
	out := runSession(t, `
emp(joe, toys).
emp(sue, toys).
pick(N) :- emp[2](N, D, 0).
?- pick(X).
:quit
`)
	if !strings.Contains(out, "1 answer(s)") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestREPLRejectsBadClauseWithoutCorruptingSession(t *testing.T) {
	out := runSession(t, `
p(a).
q(X, Y) :- p(X).
?- p(X).
:quit
`)
	// The unsafe clause must be rejected but p(a) still queryable.
	if !strings.Contains(out, "error:") {
		t.Fatalf("unsafe clause accepted:\n%s", out)
	}
	if !strings.Contains(out, "X = a") {
		t.Fatalf("session corrupted:\n%s", out)
	}
}

func TestREPLListAndClear(t *testing.T) {
	out := runSession(t, `
p(a).
:list
:clear
?- p(X).
:quit
`)
	if !strings.Contains(out, "p(a).") {
		t.Fatalf(":list missing clause:\n%s", out)
	}
	if !strings.Contains(out, "no answers") {
		t.Fatalf(":clear did not drop clauses:\n%s", out)
	}
}

func TestREPLSeedCommand(t *testing.T) {
	out := runSession(t, `
:seed 42
:sorted
:seed zzz
:quit
`)
	if !strings.Contains(out, "seed 42") || !strings.Contains(out, "sorted") || !strings.Contains(out, "bad seed") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestREPLMultilineClause(t *testing.T) {
	out := runSession(t, `
tc(X, Y) :-
  e(X, Y).
e(a, b).
?- tc(X, Y).
:quit
`)
	if !strings.Contains(out, "X = a, Y = b") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestREPLLoadFile(t *testing.T) {
	path := writeFile(t, "prog.idl", "p(a).\np(b).\n")
	out := runSession(t, ":load "+path+"\n?- p(X).\n:quit\n")
	if !strings.Contains(out, "loaded 2 clauses") || !strings.Contains(out, "2 answer(s)") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestREPLHelpAndUnknown(t *testing.T) {
	out := runSession(t, ":help\n:bogus\n:quit\n")
	if !strings.Contains(out, "commands:") || !strings.Contains(out, "unknown command") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestREPLAnsPredicateCollision(t *testing.T) {
	out := runSession(t, `
ans(a).
?- ans(X).
:quit
`)
	if !strings.Contains(out, "X = a") {
		t.Fatalf("ans collision broke queries:\n%s", out)
	}
}

func TestREPLLimitsCommand(t *testing.T) {
	out := runSession(t, `
:limits
:limits max-derivations 1 timeout 30s
e(a, b).
e(b, c).
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
?- tc(X, Y).
:limits max-derivations 0 timeout 0s
?- tc(X, Y).
:quit
`)
	// The default shows everything off; the set echoes the new values.
	if !strings.Contains(out, "limits: timeout=off, max-tuples=off, max-derivations=off") {
		t.Fatalf("default limits not shown:\n%s", out)
	}
	if !strings.Contains(out, "limits: timeout=30s, max-tuples=off, max-derivations=1") {
		t.Fatalf("set limits not echoed:\n%s", out)
	}
	// First query trips the 1-derivation budget; after clearing it the
	// same query succeeds.
	if !strings.Contains(out, "error:") {
		t.Fatalf("budget did not trip:\n%s", out)
	}
	if !strings.Contains(out, "3 answer(s)") {
		t.Fatalf("query after clearing limits failed:\n%s", out)
	}
}

func TestREPLLimitsValidation(t *testing.T) {
	out := runSession(t, `
:limits timeout
:limits timeout banana
:limits max-tuples -3
:limits widgets 7
:quit
`)
	for _, want := range []string{"usage: :limits", "bad timeout", "bad max-tuples", "unknown limit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestREPLBackslashCommands(t *testing.T) {
	out := runSession(t, `
\limits max-tuples 100
p(a).
\list
\quit
`)
	if !strings.Contains(out, "limits: timeout=off, max-tuples=100, max-derivations=off") {
		t.Fatalf("\\limits not honored:\n%s", out)
	}
	if !strings.Contains(out, "p(a).") || !strings.Contains(out, "bye") {
		t.Fatalf("\\list or \\quit not honored:\n%s", out)
	}
}

func TestREPLEOFWithoutQuit(t *testing.T) {
	// EOF must terminate cleanly.
	out := runSession(t, "p(a).\n")
	if !strings.Contains(out, "ok") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestREPLAssertRetractQuery(t *testing.T) {
	out := runSession(t, `
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
:assert e(a, b). e(b, c).
?- tc(a, X).
:retract e(b, c).
?- tc(a, X).
:db
:quit
`)
	if !strings.Contains(out, "asserted 2 fact(s)") {
		t.Fatalf("missing assert ack:\n%s", out)
	}
	if !strings.Contains(out, "retracted 1 fact(s)") {
		t.Fatalf("missing retract ack:\n%s", out)
	}
	if !strings.Contains(out, "X = c") {
		t.Fatalf("tc(a, c) not derived after assert:\n%s", out)
	}
	// After retracting e(b, c) the second query must see only X = b.
	if strings.Count(out, "X = c") != 1 {
		t.Fatalf("tc(a, c) should be gone after retract:\n%s", out)
	}
	if !strings.Contains(out, "e{(a, b)}") {
		t.Fatalf(":db should list the surviving relation:\n%s", out)
	}
}

func TestREPLAssertErrors(t *testing.T) {
	out := runSession(t, `
:assert
:assert tc(X, Y) :- e(X, Y).
:assert e(a, b).
:retract e(nope, nowhere).
:retract q(zzz).
:quit
`)
	if !strings.Contains(out, "usage: :assert") {
		t.Fatalf("missing usage for bare :assert:\n%s", out)
	}
	if !strings.Contains(out, "is not a fact") {
		t.Fatalf("rule passed to :assert should error:\n%s", out)
	}
	// Deleting an absent tuple from a known relation is a no-op ack;
	// deleting from an unknown relation is a validation error.
	if !strings.Contains(out, "retracted 0 fact(s)") {
		t.Fatalf("retracting an absent fact should be a no-op ack:\n%s", out)
	}
	if !strings.Contains(out, "unknown relation q") {
		t.Fatalf("retract from unknown relation should error:\n%s", out)
	}
}

func TestREPLWALDurability(t *testing.T) {
	path := t.TempDir() + "/repl.wal"
	log1, recs, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh wal has %d records", len(recs))
	}
	var out strings.Builder
	runREPL(strings.NewReader(":assert e(a, b). e(b, c).\n:retract e(b, c).\n:quit\n"),
		&out, replLimits{}, nil, log1)
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh session replaying the log sees exactly the surviving facts.
	log2, recs, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(recs) != 2 {
		t.Fatalf("want 2 replayed records, got %d", len(recs))
	}
	db := idlog.NewDatabase()
	for _, rec := range recs {
		next, _, err := db.Apply(rec.Inserts, rec.Deletes)
		if err != nil {
			t.Fatal(err)
		}
		db = next
	}
	var out2 strings.Builder
	runREPL(strings.NewReader(":db\n:quit\n"), &out2, replLimits{}, db, log2)
	if !strings.Contains(out2.String(), "e{(a, b)}") {
		t.Fatalf("replayed db wrong:\n%s", out2.String())
	}
}

func TestREPLPlanCommand(t *testing.T) {
	out := runSession(t, `
e(a, b).
e(b, c).
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
:plan tc(a, Z).
:plan
:limits planner off
:plan tc(a, Z).
:limits planner banana
:quit
`)
	if !strings.Contains(out, "plan:") || !strings.Contains(out, "delta tc") {
		t.Fatalf("plan output missing:\n%s", out)
	}
	if !strings.Contains(out, "[scan") && !strings.Contains(out, "[probe") {
		t.Fatalf("no access paths rendered:\n%s", out)
	}
	if !strings.Contains(out, "[delta scan]") {
		t.Fatalf("delta-first rotation not rendered:\n%s", out)
	}
	if !strings.Contains(out, "usage: :plan") {
		t.Fatalf("bare :plan should print usage:\n%s", out)
	}
	if !strings.Contains(out, "planner=off") {
		t.Fatalf(":limits planner off not echoed:\n%s", out)
	}
	if !strings.Contains(out, "(planner off: bodies in analysis order") {
		t.Fatalf("planner-off plan note missing:\n%s", out)
	}
	if !strings.Contains(out, "bad planner") {
		t.Fatalf("planner validation missing:\n%s", out)
	}
}
