// Package idlog is a deductive database engine for IDLOG — the
// non-deterministic deductive database language of Yeh-Heng Sheng
// (SIGMOD 1991) that extends DATALOG with negation by tuple-identifiers.
//
// An IDLOG program may reference, besides an ordinary predicate p, its
// ID-versions p[s]: relations in which every tuple carries a
// tuple-identifier (tid) unique within its sub-relation grouped by the
// attribute set s. Which tuple gets which tid is chosen by an Oracle,
// and that choice is the language's single source of non-determinism:
// a query denotes the set of answers obtainable over all choices.
//
// The flagship application is sampling queries (§3.3 of the paper):
//
//	prog, _ := idlog.Parse(`
//	    select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.
//	`)
//	res, _ := prog.Eval(db, idlog.WithSeed(42))
//	// res.Relation("select_two_emp") holds two employees per department.
//
// The engine also evaluates DATALOG^C (DATALOG with the choice operator
// of Krishnamurthy & Naqvi) by translating choice literals to IDLOG
// (Theorem 2), optimizes DATALOG programs by rewriting existential
// arguments into ID-literals (§4), and can enumerate the full answer set
// of a non-deterministic query on small inputs.
//
// # Concurrency
//
// A compiled *Program is immutable and safe for concurrent use. A
// *Database is single-goroutine while mutable; calling Database.Freeze
// makes it immutable and safe to share across any number of concurrent
// Eval/Enumerate/Query/Sample calls (lazy secondary indexes are then
// built once under a lock and published atomically). Database.Thaw
// returns a fresh mutable copy for deriving the next snapshot. This
// freeze/thaw contract is what cmd/idlogd builds on to serve many
// queries over one shared program and database.
package idlog

import (
	"context"
	"fmt"
	"io"
	"sort"

	"idlog/internal/adorn"
	"idlog/internal/analysis"
	"idlog/internal/ast"
	"idlog/internal/choice"
	"idlog/internal/core"
	"idlog/internal/guard"
	"idlog/internal/parser"
	"idlog/internal/relation"
	"idlog/internal/sampling"
	"idlog/internal/storage"
	"idlog/internal/value"
)

// Re-exported foundation types. These aliases make the public API
// self-contained without duplicating the implementations.
type (
	// Database holds the input (EDB) relations. Mutable databases are
	// single-goroutine; Freeze makes one immutable and shareable by
	// concurrent evaluations, Thaw copies it back into a mutable one.
	Database = core.Database
	// Result is one computed perfect model with its statistics.
	Result = core.Result
	// Stats carries evaluation counters (derivations, scans, ...).
	Stats = core.Stats
	// Answer is one member of a non-deterministic query's answer set.
	Answer = core.Answer
	// Relation is a set of tuples.
	Relation = relation.Relation
	// Oracle chooses ID-functions; see SortedOracle and RandomOracle.
	Oracle = relation.Oracle
	// Value is a two-sorted constant.
	Value = value.Value
	// Tuple is a sequence of values.
	Tuple = value.Tuple
	// Error is the engine's typed error: every governance failure
	// (cancellation, deadline, budget), program error, and recovered
	// panic reaching the public API is an *Error. Match with
	// errors.As; the underlying cause (context.Canceled, ...) stays
	// reachable through errors.Is.
	Error = guard.Error
	// ErrorCode classifies an Error; see the Code constants.
	ErrorCode = guard.Code
)

// Error codes carried by *Error, for programmatic handling.
const (
	// CodeCanceled: the caller's context was canceled mid-run.
	CodeCanceled = guard.Canceled
	// CodeDeadlineExceeded: a context deadline or WithTimeout budget
	// expired.
	CodeDeadlineExceeded = guard.DeadlineExceeded
	// CodeResourceExhausted: a derivation, tuple, or enumeration-run
	// budget was spent.
	CodeResourceExhausted = guard.ResourceExhausted
	// CodeParseError: the program or goal text does not parse.
	CodeParseError = guard.ParseError
	// CodeStratificationError: the program is not valid stratified
	// IDLOG (negation/ID cycles, choice misuse, arity conflicts).
	CodeStratificationError = guard.StratificationError
	// CodeInternal: an engine panic was recovered and converted,
	// carrying the stratum and clause under evaluation.
	CodeInternal = guard.Internal
)

// NewDatabase returns an empty database.
func NewDatabase() *Database { return core.NewDatabase() }

// Str returns the uninterpreted (sort-u) constant named s.
func Str(s string) Value { return value.Str(s) }

// Int returns the interpreted (sort-i) constant n.
func Int(n int64) Value { return value.Int(n) }

// Strs builds a tuple of u-constants.
func Strs(names ...string) Tuple { return value.Strs(names...) }

// Ints builds a tuple of i-constants.
func Ints(ns ...int64) Tuple { return value.Ints(ns...) }

// SortedOracle returns the deterministic canonical oracle: tids follow
// the sorted tuple order, so evaluation is reproducible and
// deterministic.
func SortedOracle() Oracle { return relation.SortedOracle{} }

// RandomOracle returns the seeded pseudo-random oracle behind sampling
// queries; equal seeds give equal runs.
func RandomOracle(seed uint64) Oracle { return relation.RandomOracle{Seed: seed} }

// Program is a parsed and checked program, ready for evaluation.
type Program struct {
	src  *ast.Program // as written (may contain choice literals)
	pure *ast.Program // choice-free form actually evaluated
	info *analysis.Info
}

// Parse parses, validates and plans an IDLOG or DATALOG^C program.
// Programs containing choice literals are translated to pure IDLOG via
// the Theorem-2 construction before analysis.
func Parse(src string) (*Program, error) {
	prog, err := parseText(src)
	if err != nil {
		return nil, err
	}
	return FromAST(prog)
}

// FromAST wraps an already-built AST program (used by generators).
// Structural errors — failed choice translation, stratification or
// arity conflicts — carry CodeStratificationError.
func FromAST(prog *ast.Program) (*Program, error) {
	p := &Program{src: prog, pure: prog}
	if prog.HasChoice() {
		translated, err := choice.Translate(prog)
		if err != nil {
			return nil, guard.WrapErr(guard.StratificationError, "parse", err, "choice translation failed")
		}
		p.pure = translated
	}
	info, err := analysis.Analyze(p.pure)
	if err != nil {
		return nil, guard.WrapErr(guard.StratificationError, "parse", err, "invalid program")
	}
	p.info = info
	return p, nil
}

// String renders the program as evaluated (after any choice
// translation).
func (p *Program) String() string { return p.pure.String() }

// Source renders the program as written.
func (p *Program) Source() string { return p.src.String() }

// AST returns the (choice-free) AST; callers must not mutate it.
func (p *Program) AST() *ast.Program { return p.pure }

// Strata reports the number of evaluation strata.
func (p *Program) Strata() int { return len(p.info.Strata) }

// InputPredicates returns the program's input (EDB) predicate names,
// sorted.
func (p *Program) InputPredicates() []string {
	var out []string
	for name := range p.info.EDB {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// OutputPredicates returns the predicates defined by the program,
// sorted.
func (p *Program) OutputPredicates() []string {
	var out []string
	for name := range p.info.IDB {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Eval computes one perfect model of the program over db. With no
// options the run is deterministic (SortedOracle); use WithSeed or
// WithOracle for non-deterministic runs.
//
// Under governance (EvalContext, WithTimeout, WithMaxTuples,
// WithMaxDerivations) a tripped run returns BOTH a partial *Result —
// marked Incomplete, holding every tuple derived so far (a sound
// prefix of the model) — and a typed *Error saying why.
func (p *Program) Eval(db *Database, opts ...Option) (*Result, error) {
	return p.EvalContext(context.Background(), db, opts...)
}

// EvalContext is Eval honoring ctx: cancellation and deadlines are
// observed at stratum, fixpoint-round, and derivation-batch
// boundaries (within guard.CheckInterval derivations).
func (p *Program) EvalContext(ctx context.Context, db *Database, opts ...Option) (*Result, error) {
	cfg := buildConfig(ctx, opts)
	db, err := engineTestDB(db)
	if err != nil {
		return nil, err
	}
	return core.Eval(p.info, db, cfg.eval)
}

// Enumerate computes the full answer set of the query given by the
// output predicates preds: one Answer per distinct combination of their
// relations across all ID-function choices. Exponential; use on small
// inputs (the WithMaxRuns option bounds the walk).
//
// A walk cut short — run budget, timeout, cancellation — returns the
// answers found so far alongside a typed *Error.
func (p *Program) Enumerate(db *Database, preds []string, opts ...Option) ([]*Answer, error) {
	return p.EnumerateContext(context.Background(), db, preds, opts...)
}

// EnumerateContext is Enumerate honoring ctx. The run budgets and the
// wall clock govern the walk as a whole, not each run.
func (p *Program) EnumerateContext(ctx context.Context, db *Database, preds []string, opts ...Option) ([]*Answer, error) {
	cfg := buildConfig(ctx, opts)
	db, dberr := engineTestDB(db)
	if dberr != nil {
		return nil, dberr
	}
	answers, err := core.Enumerate(p.info, db, preds, core.EnumerateOptions{
		MaxRuns: cfg.maxRuns,
		Eval:    cfg.eval,
	})
	return answers, wrapEnumerateErr(err)
}

// wrapEnumerateErr lifts the enumeration budget error into the typed
// taxonomy; guard errors pass through already typed.
func wrapEnumerateErr(err error) error {
	if budget, ok := err.(*core.ErrEnumerationBudget); ok {
		return guard.WrapErr(guard.ResourceExhausted, "enumerate", budget, "run budget spent")
	}
	return err
}

// ExplainPlan renders the join plans the engine would use for an
// evaluation of the program over db under the same options: per stratum
// and clause, the chosen body order with access paths (scan, probe with
// columns, delta scan, filter, compute) and estimated cardinalities,
// plus the delta-first variants of recursive clauses. It evaluates the
// program once so the rendered cardinality snapshots are exactly the
// ones the planner sees; the computed model is discarded.
func (p *Program) ExplainPlan(db *Database, opts ...Option) (string, error) {
	return p.ExplainPlanContext(context.Background(), db, opts...)
}

// ExplainPlanContext is ExplainPlan honoring ctx.
func (p *Program) ExplainPlanContext(ctx context.Context, db *Database, opts ...Option) (string, error) {
	cfg := buildConfig(ctx, opts)
	return core.ExplainPlan(p.info, db, cfg.eval)
}

// Optimize applies the §4 optimization strategy w.r.t. the output
// predicate q: the RBK88 adornment algorithm identifies ∀-existential
// arguments, projections are pushed through derived predicates, and
// input-predicate literals with existential positions are replaced by
// tid-0 ID-literals (∃-existential rewriting). The result is a new,
// q-equivalent program.
func (p *Program) Optimize(q string) (*Program, error) {
	opt, err := adorn.Optimize(p.pure, q)
	if err != nil {
		return nil, err
	}
	return FromAST(opt)
}

// SampleSpec describes a sampling query: choose K tuples from every
// group of Relation (grouped by the 1-based columns GroupBy; empty
// means one global group).
type SampleSpec struct {
	Relation string
	Arity    int
	GroupBy  []int
	K        int
}

// Sample runs the paper's sampling query "select K tuples from every
// group" (§3.3) against db under the given seed and returns the sample.
func Sample(spec SampleSpec, db *Database, seed uint64) (*Relation, error) {
	return SampleContext(context.Background(), spec, db, seed)
}

// SampleContext is Sample honoring ctx and the governance options
// (WithTimeout, WithMaxTuples, WithMaxDerivations).
func SampleContext(ctx context.Context, spec SampleSpec, db *Database, seed uint64, opts ...Option) (*Relation, error) {
	cols := make([]int, len(spec.GroupBy))
	for i, c := range spec.GroupBy {
		cols[i] = c - 1
	}
	s := sampling.Spec{Relation: spec.Relation, Arity: spec.Arity, GroupCols: cols, K: spec.K}
	cfg := buildConfig(ctx, opts)
	db, err := engineTestDB(db)
	if err != nil {
		return nil, err
	}
	rel, _, err := sampling.SampleWith(s, db, seed, cfg.eval)
	return rel, err
}

// SampleProgram returns the IDLOG program implementing the sampling
// query, for inspection.
func SampleProgram(spec SampleSpec) (*Program, error) {
	cols := make([]int, len(spec.GroupBy))
	for i, c := range spec.GroupBy {
		cols[i] = c - 1
	}
	prog, err := sampling.Program(sampling.Spec{
		Relation: spec.Relation, Arity: spec.Arity, GroupCols: cols, K: spec.K,
	})
	if err != nil {
		return nil, err
	}
	return FromAST(prog)
}

func parseText(src string) (*ast.Program, error) {
	prog, err := parser.Program(src)
	if err != nil {
		return nil, guard.WrapErr(guard.ParseError, "parse", err, "")
	}
	return prog, nil
}

// SaveSnapshot writes db to path in the binary snapshot format
// (atomically, via a temp file).
func SaveSnapshot(path string, db *Database) error { return storage.SaveFile(path, db) }

// LoadSnapshot reads a database snapshot from path.
func LoadSnapshot(path string) (*Database, error) { return storage.LoadFile(path) }

// WriteSnapshot serializes db to w in the binary snapshot format.
func WriteSnapshot(w io.Writer, db *Database) error { return storage.Write(w, db) }

// ReadSnapshot deserializes a database from r.
func ReadSnapshot(r io.Reader) (*Database, error) { return storage.Read(r) }

// CheckDeterministic evaluates the program under several different
// ID-function oracles (the given seeds plus the canonical sorted
// oracle) and reports whether the named output predicates received the
// identical relations every time. A true result certifies — for this
// input — that the query is deterministic even though the program uses
// non-deterministic constructs, the situation of the paper's
// optimization rewrites (§4) and of counting via tuple-identifiers.
func (p *Program) CheckDeterministic(db *Database, preds []string, seeds ...uint64) (bool, error) {
	if len(seeds) == 0 {
		seeds = []uint64{1, 2, 3, 4, 5, 6, 7}
	}
	var ref []string
	fingerprint := func(res *Result) ([]string, error) {
		out := make([]string, 0, len(preds))
		for _, q := range preds {
			r := res.Relation(q)
			if r == nil {
				return nil, fmt.Errorf("idlog: unknown predicate %s", q)
			}
			out = append(out, r.Fingerprint())
		}
		return out, nil
	}
	res, err := p.Eval(db)
	if err != nil {
		return false, err
	}
	if ref, err = fingerprint(res); err != nil {
		return false, err
	}
	for _, seed := range seeds {
		res, err := p.Eval(db, WithSeed(seed))
		if err != nil {
			return false, err
		}
		fp, err := fingerprint(res)
		if err != nil {
			return false, err
		}
		for i := range fp {
			if fp[i] != ref[i] {
				return false, nil
			}
		}
	}
	return true, nil
}
