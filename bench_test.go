// Benchmarks: one testing.B benchmark per experiment of EXPERIMENTS.md
// (E1–E11). `go test -bench=. -benchmem` reports the raw costs; the
// formatted tables with correctness checks come from cmd/idlogbench.
// E12 (the idlogd server benchmark) lives in internal/bench/serverbench
// only — importing internal/server here would cycle back to this package.
package idlog

import (
	"fmt"
	"testing"
	"time"

	"idlog/internal/bench"
	"idlog/internal/choice"
	"idlog/internal/core"
	"idlog/internal/disjunctive"
	"idlog/internal/inflate"
	"idlog/internal/parser"
	"idlog/internal/relation"
	"idlog/internal/stable"
	"idlog/internal/turing"
)

func mustProg(b *testing.B, src string) *Program {
	b.Helper()
	p, err := Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkE1SamplingIDLOGvsChoicePair: the Example-5 multi-sample
// query, IDLOG one-clause form vs the DATALOG^C pair encoding.
func BenchmarkE1SamplingIDLOGvsChoicePair(b *testing.B) {
	sizes := [][2]int{{4, 8}, {16, 32}}
	idlogProg := mustProg(b, `select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.`)
	pair, err := parser.Program(`
		emp1(N, D) :- emp(N, D), choice((D), (N)).
		emp2(N, D) :- emp(N, D), choice((D), (N)).
		select_two_emp(N1) :- emp1(N1, D), emp2(N2, D), N1 != N2.
		select_two_emp(N2) :- emp1(N1, D), emp2(N2, D), N1 != N2.
	`)
	if err != nil {
		b.Fatal(err)
	}
	for _, sz := range sizes {
		db := bench.EmpDB(sz[0], sz[1])
		b.Run(fmt.Sprintf("idlog/depts=%d,per=%d", sz[0], sz[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := idlogProg.Eval(db, WithSeed(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("choicepair/depts=%d,per=%d", sz[0], sz[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := choice.Eval(pair, db, choice.Options{Oracle: relation.RandomOracle{Seed: uint64(i)}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2AllDeptsOptimization: plain DATALOG vs the ∃-existential
// ID-literal form of the §1 motivating query.
func BenchmarkE2AllDeptsOptimization(b *testing.B) {
	plain := mustProg(b, `all_depts(D) :- emp(N, D).`)
	opt, err := plain.Optimize("all_depts")
	if err != nil {
		b.Fatal(err)
	}
	for _, sz := range [][2]int{{10, 100}, {50, 1000}} {
		db := bench.EmpDB(sz[0], sz[1])
		b.Run(fmt.Sprintf("plain/depts=%d,per=%d", sz[0], sz[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plain.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("idliteral/depts=%d,per=%d", sz[0], sz[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := opt.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3AdornmentRewrite: Example 6 original vs the Example 8
// optimized program on chain+fan graphs.
func BenchmarkE3AdornmentRewrite(b *testing.B) {
	orig := mustProg(b, `
		q(X) :- a(X, Y).
		a(X, Y) :- p(X, Z), a(Z, Y).
		a(X, Y) :- p(X, Y).
	`)
	opt, err := orig.Optimize("q")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range [][2]int{{40, 10}, {60, 25}} {
		db := bench.ChainFanDB(w[0], w[1])
		b.Run(fmt.Sprintf("original/chain=%d,fan=%d", w[0], w[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := orig.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("optimized/chain=%d,fan=%d", w[0], w[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := opt.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4ChoiceTranslation: KN88 direct evaluation vs the
// Theorem-2 IDLOG translation.
func BenchmarkE4ChoiceTranslation(b *testing.B) {
	src := `select_emp(Name) :- emp(Name, Dept), choice((Dept), (Name)).`
	prog, err := parser.Program(src)
	if err != nil {
		b.Fatal(err)
	}
	translated := mustProg(b, src) // facade translates internally
	for _, sz := range [][2]int{{10, 50}, {50, 500}} {
		db := bench.EmpDB(sz[0], sz[1])
		b.Run(fmt.Sprintf("kn88/depts=%d,per=%d", sz[0], sz[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := choice.Eval(prog, db, choice.Options{Oracle: relation.RandomOracle{Seed: 1}}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("translated/depts=%d,per=%d", sz[0], sz[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := translated.Eval(db, WithSeed(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5TuringCompilation: direct NGTM path simulation vs
// evaluating the compiled IDLOG program for one guessed path.
func BenchmarkE5TuringCompilation(b *testing.B) {
	m := &turing.Machine{
		Start: "g", Accept: "acc", Blank: "_",
		Rules: []turing.Rule{
			{State: "g", Read: "0", NewState: "g", Write: "0", Move: turing.Right},
			{State: "g", Read: "1", NewState: "g", Write: "1", Move: turing.Right},
			{State: "g", Read: "1", NewState: "acc", Write: "1", Move: turing.Stay},
		},
	}
	for _, steps := range []int{8, 32} {
		tapeSize := steps + 2
		input := make([]string, tapeSize-2)
		for i := range input {
			input[i] = "0"
		}
		input[len(input)-1] = "1"
		b.Run(fmt.Sprintf("direct/steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Run(input, steps, nil)
			}
		})
		compiled, err := turing.Compile(m, steps, tapeSize)
		if err != nil {
			b.Fatal(err)
		}
		db := turing.TapeDB(input)
		b.Run(fmt.Sprintf("compiled/steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := compiled.EvalPath(db, relation.SortedOracle{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6SeminaiveAblation: naive vs semi-naive transitive closure.
func BenchmarkE6SeminaiveAblation(b *testing.B) {
	prog := mustProg(b, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	for _, n := range []int{64, 128} {
		db := bench.ChainDB(n)
		b.Run(fmt.Sprintf("seminaive/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prog.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("naive/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prog.Eval(db, WithNaive()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7ModelEnumeration: full answer-set enumeration of the
// Example-2 program as the person set grows.
func BenchmarkE7ModelEnumeration(b *testing.B) {
	prog := mustProg(b, `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`)
	for _, n := range []int{3, 6} {
		db := NewDatabase()
		for i := 0; i < n; i++ {
			_ = db.Add("person", Strs(fmt.Sprintf("p%02d", i)))
		}
		b.Run(fmt.Sprintf("persons=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				answers, err := prog.Enumerate(db, []string{"man"}, WithMaxRuns(2000000))
				if err != nil {
					b.Fatal(err)
				}
				if len(answers) != 1<<n {
					b.Fatalf("answers = %d", len(answers))
				}
			}
		})
	}
}

// BenchmarkE8InflationarySemantics: a single inflationary DL run vs a
// single IDLOG fixpoint run of the man/woman query.
func BenchmarkE8InflationarySemantics(b *testing.B) {
	dl, err := inflate.Parse(inflate.DL, `
		man(X) :- person(X), not woman(X).
		woman(X) :- person(X), not man(X).
	`)
	if err != nil {
		b.Fatal(err)
	}
	idlogProg := mustProg(b, `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
		woman(X) :- sex_guess[1](X, female, 1).
	`)
	for _, n := range []int{4, 8} {
		db := core.NewDatabase()
		for i := 0; i < n; i++ {
			_ = db.Add("person", Strs(fmt.Sprintf("p%02d", i)))
		}
		b.Run(fmt.Sprintf("dl/persons=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dl.Eval(db, inflate.Options{Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("idlog/persons=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := idlogProg.Eval(db, WithSeed(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9SemanticsLandscape: enumerating the Example-2 answer
// family under each of the four formalisms of §3.2.
func BenchmarkE9SemanticsLandscape(b *testing.B) {
	disj, err := disjunctive.Parse(`man(X), woman(X) :- person(X).`)
	if err != nil {
		b.Fatal(err)
	}
	stab, err := stable.Parse(`
		man(X) :- person(X), not woman(X).
		woman(X) :- person(X), not man(X).
	`)
	if err != nil {
		b.Fatal(err)
	}
	idlogProg := mustProg(b, `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`)
	const persons = 3
	db := core.NewDatabase()
	for i := 0; i < persons; i++ {
		_ = db.Add("person", Strs(fmt.Sprintf("p%02d", i)))
	}
	facadeDB := NewDatabase()
	for i := 0; i < persons; i++ {
		_ = facadeDB.Add("person", Strs(fmt.Sprintf("p%02d", i)))
	}
	b.Run("disjunctive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := disj.MinimalModels(db, disjunctive.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stab.StableModels(db, stable.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("idlog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := idlogProg.Enumerate(facadeDB, []string{"man"}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11GovernedOverhead: the same transitive-closure run with no
// guard vs an armed, never-tripping guard (timeout + tuple + derivation
// limits). The delta is the whole cost of resource governance.
func BenchmarkE11GovernedOverhead(b *testing.B) {
	prog := mustProg(b, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	for _, n := range []int{64, 128} {
		db := bench.ChainDB(n)
		b.Run(fmt.Sprintf("ungoverned/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prog.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("governed/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := prog.Eval(db,
					WithTimeout(time.Hour), WithMaxTuples(1<<30), WithMaxDerivations(1<<30))
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10DeterministicCounting: the cardinality-via-tids program
// as the relation grows.
func BenchmarkE10DeterministicCounting(b *testing.B) {
	prog := mustProg(b, `
		has_tid(T) :- item[](X, T).
		card(C)    :- has_tid(T), succ(T, C), not has_tid(C).
	`)
	for _, n := range []int{100, 1000} {
		db := NewDatabase()
		for i := 0; i < n; i++ {
			_ = db.Add("item", Ints(int64(i)))
		}
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := prog.Eval(db, WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				if !res.Relation("card").Contains(Ints(int64(n))) {
					b.Fatalf("wrong count")
				}
			}
		})
	}
}

// BenchmarkE17PreparedPointQuery: the E17 prepared-query kernel via the
// public API — Program.Query re-parses the goal and re-plans every
// stratum per call, while a Program.Prepare handle reuses one compiled
// wrapper and a plan cache across calls.
func BenchmarkE17PreparedPointQuery(b *testing.B) {
	src := "l0(X, Y) :- e(X, Y).\n"
	for i := 1; i < 32; i++ {
		src += fmt.Sprintf("l%d(X, Y) :- l%d(X, Z), e(Z, Y).\n", i, i-1)
	}
	prog := mustProg(b, src)
	db := bench.ChainDB(12)
	const goal = "l31(0, Y)"
	b.Run("query", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := prog.Query(db, goal); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		pq, err := prog.Prepare(goal)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pq.Query(db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE17StreamingJoin: the analysis-ordered adversarial join,
// streaming executor off vs on — the allocation column is the headline
// (the legacy walk allocates a match closure per binding per literal).
func BenchmarkE17StreamingJoin(b *testing.B) {
	prog := mustProg(b, `hit(X, Z) :- big1(X, Y), big2(Y, Z), sel(Z).`)
	const n, fan = 4096, 128
	db := NewDatabase()
	for i := 0; i < n; i++ {
		_ = db.Add("big1", Ints(int64(i), int64(i%(n/fan))))
	}
	for j := 0; j < n/fan; j++ {
		for k := 0; k < fan; k++ {
			_ = db.Add("big2", Ints(int64(j), int64(1_000_000+k)))
		}
	}
	_ = db.Add("sel", Ints(int64(1_000_000+fan-1)))
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"legacy", []Option{WithStreaming(false)}},
		{"streaming", nil},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := append([]Option{WithPlanner(false)}, mode.opts...)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := prog.Eval(db, opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
