module idlog

go 1.22
