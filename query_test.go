package idlog

import "testing"

func TestQueryBindings(t *testing.T) {
	prog, err := Parse(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	if err := AddFactsText(db, "e(a, b). e(b, c)."); err != nil {
		t.Fatal(err)
	}
	qr, err := prog.Query(db, "tc(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Vars) != 1 || qr.Vars[0] != "Y" {
		t.Fatalf("vars = %v", qr.Vars)
	}
	if len(qr.Rows) != 2 {
		t.Fatalf("rows = %v", qr.Rows)
	}
}

func TestQueryGroundGoal(t *testing.T) {
	prog, err := Parse(`p(a).`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	yes, err := prog.Query(db, "p(a)")
	if err != nil {
		t.Fatal(err)
	}
	no, err := prog.Query(db, "p(b)")
	if err != nil {
		t.Fatal(err)
	}
	if !yes.Holds() || no.Holds() {
		t.Fatalf("ground goals: yes=%v no=%v", yes.Holds(), no.Holds())
	}
}

func TestQueryConjunctionWithComparison(t *testing.T) {
	prog, err := Parse(`score(a, 3). score(b, 9).`)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := prog.Query(NewDatabase(), "score(X, S), S > 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][0].String() != "b" {
		t.Fatalf("rows = %v", qr.Rows)
	}
}

func TestQueryIDLiteral(t *testing.T) {
	prog, err := Parse(`emp(joe, toys). emp(sue, toys).`)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := prog.Query(NewDatabase(), "emp[2](N, D, 0)", WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 {
		t.Fatalf("rows = %v", qr.Rows)
	}
}

func TestQueryBadGoal(t *testing.T) {
	prog, err := Parse(`p(a).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Query(NewDatabase(), "p(X), q("); err == nil {
		t.Fatalf("bad goal accepted")
	}
	// Unsafe goal: variable only in negation.
	if _, err := prog.Query(NewDatabase(), "not p(X)"); err == nil {
		t.Fatalf("unsafe goal accepted")
	}
}

func TestAddFactsTextRejections(t *testing.T) {
	db := NewDatabase()
	if err := AddFactsText(db, "p(X) :- q(X)."); err == nil {
		t.Fatalf("rule accepted as fact")
	}
	if err := AddFactsText(db, "p(X)."); err == nil {
		t.Fatalf("non-ground fact accepted")
	}
	if err := AddFactsText(db, "p(a,"); err == nil {
		t.Fatalf("syntax error accepted")
	}
}

func TestQueryAvoidsAnsCollision(t *testing.T) {
	prog, err := Parse(`ans(a). ans_(b).`)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := prog.Query(NewDatabase(), "ans(X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][0].String() != "a" {
		t.Fatalf("rows = %v", qr.Rows)
	}
}
