package idlog

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randMagicDB builds a random e/2 edge relation plus a blocked/1
// relation over a small constant domain.
func randMagicDB(t *testing.T, r *rand.Rand) *Database {
	t.Helper()
	db := NewDatabase()
	domain := 10
	edges := 15 + r.Intn(20)
	for i := 0; i < edges; i++ {
		_ = db.Add("e", Strs(fmt.Sprintf("c%d", r.Intn(domain)), fmt.Sprintf("c%d", r.Intn(domain))))
	}
	for i := 0; i < 3; i++ {
		_ = db.Add("blocked", Strs(fmt.Sprintf("c%d", r.Intn(domain))))
	}
	return db
}

// randMagicProgram assembles a random rulebase over e/2 and blocked/1:
// a base step, a recursive closure (shape drawn at random), a
// same-generation predicate, filtered views (comparisons, negation over
// the base relation), and junk rules outside any goal's cone.
func randMagicProgram(r *rand.Rand) string {
	src := "t0(X, Y) :- e(X, Y).\n"
	if r.Intn(2) == 0 {
		src += "t0(X, Y) :- e(Y, X).\n"
	}
	src += "t1(X, Y) :- t0(X, Y).\n"
	switch r.Intn(3) {
	case 0: // left-linear
		src += "t1(X, Y) :- t1(X, Z), t0(Z, Y).\n"
	case 1: // right-linear
		src += "t1(X, Y) :- t0(X, Z), t1(Z, Y).\n"
	default: // nonlinear
		src += "t1(X, Y) :- t1(X, Z), t1(Z, Y).\n"
	}
	src += `
		sg(X, Y) :- e(Z, X), e(Z, Y).
		sg(X, Y) :- e(Z, X), sg(Z, W), e(W, Y).
		q(X, Y) :- t1(X, Y), X != Y.
		qn(X, Y) :- t1(X, Y), not blocked(Y).
		junk(X) :- e(X, X), junk2(X).
		junk2(X) :- e(X, X).
	`
	return src
}

// randMagicGoals draws goal bodies covering bound-first, bound-second,
// ground, and free binding patterns over the random program's derived
// predicates.
func randMagicGoals(r *rand.Rand) []string {
	c := func() string { return fmt.Sprintf("c%d", r.Intn(10)) }
	return []string{
		fmt.Sprintf("t1(%s, Y)", c()),
		fmt.Sprintf("t1(X, %s)", c()),
		fmt.Sprintf("t1(%s, %s)", c(), c()),
		fmt.Sprintf("sg(%s, Y)", c()),
		fmt.Sprintf("q(%s, Y)", c()),
		fmt.Sprintf("qn(%s, Y)", c()),
		"t1(X, Y)", // free: exercises the fallback path
		fmt.Sprintf("t1(%s, Y), Y != %s", c(), c()),
	}
}

// TestMagicDifferentialRandom is the magic-on vs magic-off property
// suite: random programs, random databases, random goal binding
// patterns — every answer set must be identical with the demand
// rewrite active and inactive, sequentially and on 4 workers. Run
// under -race it also exercises the rewrite's shared plan cache; the
// CI disk-engine job repeats it against disk-backed EDBs via
// IDLOG_ENGINE=disk.
func TestMagicDifferentialRandom(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			prog := mustParse(t, randMagicProgram(r))
			db := randMagicDB(t, r)
			for _, goal := range randMagicGoals(r) {
				pq, err := prog.Prepare(goal)
				if err != nil {
					t.Fatalf("prepare %q: %v", goal, err)
				}
				for _, workers := range []int{1, 4} {
					opts := []Option{WithParallelism(workers)}
					off, err := pq.Query(db, append(opts, WithMagic(false))...)
					if err != nil {
						t.Fatalf("goal %q magic-off: %v", goal, err)
					}
					on, err := pq.Query(db, opts...)
					if err != nil {
						t.Fatalf("goal %q magic-on: %v", goal, err)
					}
					if off.UsedMagic {
						t.Fatalf("goal %q: WithMagic(false) run reports UsedMagic", goal)
					}
					if on.UsedMagic != pq.UsesMagic() {
						t.Fatalf("goal %q: UsedMagic=%v but UsesMagic=%v", goal, on.UsedMagic, pq.UsesMagic())
					}
					if !reflect.DeepEqual(off.Vars, on.Vars) || !reflect.DeepEqual(off.Rows, on.Rows) {
						t.Fatalf("goal %q (workers=%d): answers diverge\nmagic off: %v %v\nmagic on:  %v %v",
							goal, workers, off.Vars, off.Rows, on.Vars, on.Rows)
					}
				}
			}
		})
	}
}

// TestMagicPaperExamples runs goal queries against the paper's Example
// 1–8 programs with the rewrite on and off. The choice/ID examples sit
// outside the sound fragment (ID-literals in the cone), so they must
// fall back — and produce identical answers; Example 6 is pure Datalog,
// so its bound goal must take the demand path.
func TestMagicPaperExamples(t *testing.T) {
	db := NewDatabase()
	for i := 0; i < 5; i++ {
		_ = db.Add("person", Strs(fmt.Sprintf("p%d", i)))
	}
	for d := 0; d < 3; d++ {
		for e := 0; e < 4; e++ {
			_ = db.Add("emp", Strs(fmt.Sprintf("e%d_%d", d, e), fmt.Sprintf("dept%d", d)))
		}
	}
	for i := 0; i < 20; i++ {
		_ = db.Add("p", Strs(fmt.Sprintf("v%02d", i), fmt.Sprintf("v%02d", i+1)))
	}
	goals := map[string][]string{
		"ex1-man":         {"man(p1)", "man(X)"},
		"ex2-man-woman":   {"man(p1)", "woman(X)"},
		"ex3-dl-contrast": {"chosen(p2)", "chosen(X)"},
		"ex4-choice":      {"pick(N, dept1)", "pick(N, D)"},
		"ex5-sampling":    {"select_two_emp(Name)"},
		"ex6-reach-source": {
			"q(v05)", "a(v05, Y)", "a(X, v07)",
		},
	}
	for _, ex := range paperExamples {
		prog := mustParse(t, ex.src)
		for _, goal := range goals[ex.name] {
			pq, err := prog.Prepare(goal)
			if err != nil {
				t.Fatalf("%s: prepare %q: %v", ex.name, goal, err)
			}
			off, err := pq.Query(db, WithMagic(false))
			if err != nil {
				t.Fatalf("%s %q magic-off: %v", ex.name, goal, err)
			}
			on, err := pq.Query(db)
			if err != nil {
				t.Fatalf("%s %q magic-on: %v", ex.name, goal, err)
			}
			if !reflect.DeepEqual(off.Vars, on.Vars) || !reflect.DeepEqual(off.Rows, on.Rows) {
				t.Fatalf("%s %q: answers diverge\nmagic off: %v %v\nmagic on:  %v %v",
					ex.name, goal, off.Vars, off.Rows, on.Vars, on.Rows)
			}
			if ex.name != "ex6-reach-source" && pq.UsesMagic() {
				t.Fatalf("%s %q: ID-bearing cone should fall back", ex.name, goal)
			}
		}
	}
	// Example 6's bound goal must actually take the demand path.
	prog := mustParse(t, paperExamples[5].src)
	pq, err := prog.Prepare("a(v05, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !pq.UsesMagic() {
		t.Fatal("ex6 bound goal should use magic")
	}
	qr, err := pq.Query(db)
	if err != nil {
		t.Fatal(err)
	}
	if !qr.UsedMagic || len(qr.Rows) != 15 {
		t.Fatalf("ex6 a(v05, Y): UsedMagic=%v rows=%d, want true/15", qr.UsedMagic, len(qr.Rows))
	}
}

// TestMagicFallbackAndToggles pins the fallback matrix end to end:
// inapplicable goals report UsesMagic()==false and still answer; the
// WithMagic(false) and WithTrace escape hatches bypass an applicable
// rewrite; ExplainPlan labels each mode.
func TestMagicFallbackAndToggles(t *testing.T) {
	prog := mustParse(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	db := NewDatabase()
	for i := 0; i < 50; i++ {
		_ = db.Add("e", Ints(int64(i), int64(i+1)))
	}

	bound, err := prog.Prepare("tc(40, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !bound.UsesMagic() {
		t.Fatal("bound goal should admit the rewrite")
	}
	free, err := prog.Prepare("tc(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if free.UsesMagic() {
		t.Fatal("free goal should fall back")
	}
	fqr, err := free.Query(db)
	if err != nil {
		t.Fatal(err)
	}
	if fqr.UsedMagic || len(fqr.Rows) != 50*51/2 {
		t.Fatalf("free goal: UsedMagic=%v rows=%d", fqr.UsedMagic, len(fqr.Rows))
	}

	on, err := bound.Query(db)
	if err != nil {
		t.Fatal(err)
	}
	off, err := bound.Query(db, WithMagic(false))
	if err != nil {
		t.Fatal(err)
	}
	traced, err := bound.Query(db, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !on.UsedMagic || off.UsedMagic || traced.UsedMagic {
		t.Fatalf("toggle states wrong: on=%v off=%v traced=%v", on.UsedMagic, off.UsedMagic, traced.UsedMagic)
	}
	for _, qr := range []*QueryResult{off, traced} {
		if !reflect.DeepEqual(qr.Rows, on.Rows) {
			t.Fatalf("rows diverge across toggles")
		}
	}
	// The demand run derives only the cone past node 40; the full run
	// derives the whole closure.
	if on.Stats.Derivations*5 >= off.Stats.Derivations {
		t.Fatalf("expected >=5x fewer derivations with magic: on=%d off=%d",
			on.Stats.Derivations, off.Stats.Derivations)
	}

	plan, err := bound.ExplainPlan(db)
	if err != nil {
		t.Fatal(err)
	}
	if want := "magic-sets rewrite active"; !containsAll(plan, want, "tc__bf", "m__tc__bf") {
		t.Fatalf("magic plan missing rewritten rules:\n%s", plan)
	}
	planOff, err := bound.ExplainPlan(db, WithMagic(false))
	if err != nil {
		t.Fatal(err)
	}
	if !containsAll(planOff, "rewrite available but disabled") {
		t.Fatalf("disabled plan missing header:\n%s", planOff)
	}
	planFree, err := free.ExplainPlan(db)
	if err != nil {
		t.Fatal(err)
	}
	if !containsAll(planFree, "full evaluation", "binds no argument") {
		t.Fatalf("fallback plan missing reason:\n%s", planFree)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
