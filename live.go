package idlog

import (
	"context"
	"sort"

	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/guard"
	"idlog/internal/incremental"
	"idlog/internal/parser"
)

// Fact is one ground tuple of a named relation — the unit of live EDB
// mutation. See Database.Apply and LiveView.
type Fact = core.Fact

// UpdateStats summarizes one incremental update: net tuples inserted
// and deleted across the model, DRed overdeletion/rederivation counts,
// and whether (and where) the update fell back to recomputation.
type UpdateStats = incremental.UpdateStats

// Delta is the effective change of one Database.Apply batch.
type Delta = core.Delta

// ParseFacts parses ground facts in program syntax ("emp(joe, toys).
// dept(toys).") into a Fact list. Rules and non-ground facts are
// rejected with a typed error.
func ParseFacts(src string) ([]Fact, error) {
	prog, err := parser.Program(src)
	if err != nil {
		return nil, guard.WrapErr(guard.ParseError, "facts", err, "")
	}
	var out []Fact
	for _, c := range prog.Clauses {
		if !c.IsFact() {
			return nil, guard.Errorf(guard.ParseError, "facts", "%q is not a fact", c)
		}
		tuple := make(Tuple, len(c.Head.Args))
		for i, t := range c.Head.Args {
			cst, ok := t.(ast.Const)
			if !ok {
				return nil, guard.Errorf(guard.ParseError, "facts", "%q has a non-ground argument", c)
			}
			tuple[i] = cst.Val
		}
		out = append(out, Fact{Pred: c.Head.Pred, Tuple: tuple})
	}
	return out, nil
}

// LiveView is a materialized model of a program kept consistent under
// EDB mutations. Insertions propagate with delta-driven semi-naive
// evaluation and deletions with DRed; strata that read a changed
// predicate non-monotonically (through negation or an ID-literal) fall
// back to recomputation from that stratum up, under the same oracle —
// see internal/incremental for the precise boundary.
//
// A LiveView is not safe for concurrent use: callers serialize Apply
// against reads (idlogd wraps each view in an RWMutex).
type LiveView struct {
	prog *Program
	view *incremental.View
}

// NewLiveView evaluates the program over db and returns the maintained
// view. opts govern the initial evaluation and pin the oracle (and
// parallelism) used by any later fallback recomputation.
func (p *Program) NewLiveView(db *Database, opts ...Option) (*LiveView, error) {
	cfg := buildConfig(context.Background(), opts)
	v, err := incremental.NewView(p.info, db, cfg.eval)
	if err != nil {
		return nil, err
	}
	return &LiveView{prog: p, view: v}, nil
}

// Apply mutates the view's EDB snapshot — deletes first, then inserts —
// and incrementally maintains the model, returning the new snapshot and
// the update statistics. opts bound the maintenance work (WithTimeout,
// WithMaxDerivations, WithMaxTuples); oracle options are ignored — the
// view's construction oracle stays pinned. On error the view is stale:
// reads still see the last consistent state's relations only after
// Rebuild.
func (lv *LiveView) Apply(inserts, deletes []Fact, opts ...Option) (*Database, UpdateStats, error) {
	cfg := buildConfig(context.Background(), opts)
	db, up, err := lv.view.ApplyFacts(inserts, deletes, cfg.eval.Guard)
	if err != nil {
		return nil, up, err
	}
	return db, up, nil
}

// Advance is the split form of Apply for callers that already ran
// Database.Apply themselves (idlogd applies one batch to a session and
// advances every view with the same effective delta): db is the new
// snapshot, delta the effective change from the view's current
// snapshot.
func (lv *LiveView) Advance(db *Database, delta *Delta, opts ...Option) (UpdateStats, error) {
	cfg := buildConfig(context.Background(), opts)
	return lv.view.Apply(db, delta, cfg.eval.Guard)
}

// Program returns the program the view materializes.
func (lv *LiveView) Program() *Program { return lv.prog }

// Database returns the EDB snapshot the view currently reflects.
func (lv *LiveView) Database() *Database { return lv.view.Database() }

// Relation returns the materialized relation for name, or nil when the
// program neither defines nor reads it.
func (lv *LiveView) Relation(name string) *Relation { return lv.view.Relation(name) }

// Stale reports whether a failed Apply left the view inconsistent;
// Rebuild clears it.
func (lv *LiveView) Stale() bool { return lv.view.Stale() }

// Rebuild recomputes the model from scratch over db (pass
// lv.Database() to rebuild in place), clearing staleness.
func (lv *LiveView) Rebuild(db *Database) error { return lv.view.Rebuild(db) }

// LastUpdate returns the statistics of the most recent Apply.
func (lv *LiveView) LastUpdate() UpdateStats { return lv.view.LastUpdate() }

// TotalUpdates returns cumulative Apply statistics.
func (lv *LiveView) TotalUpdates() UpdateStats { return lv.view.TotalUpdates() }

// EvalStats returns cumulative engine counters across the initial
// evaluation, incremental passes, and fallback recomputations.
func (lv *LiveView) EvalStats() Stats { return lv.view.EvalStats() }

// Relations lists the view's materialized predicates, sorted.
func (lv *LiveView) Relations() []string {
	var out []string
	for p := range lv.prog.info.EDB {
		if lv.view.Relation(p) != nil {
			out = append(out, p)
		}
	}
	for p := range lv.prog.info.IDB {
		if lv.view.Relation(p) != nil {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
