package idlog

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// partitionGrid is the differential matrix of the partitioned
// evaluator: every partition fan-out must be observationally identical
// to the sequential unpartitioned engine, whether the fixpoint runs on
// one worker (partition-only mode, the single-core CI configuration)
// or several, and whether the EDB lives in memory or on disk.
var partitionGrid = []struct {
	partitions, parallel int
}{
	{1, 1}, {1, 4}, {2, 1}, {2, 4}, {8, 1}, {8, 4},
}

// TestPartitionedDifferential is the randomized partitioned-vs-
// unpartitioned property suite: for random EDBs shaped by random
// mutation interleavings, every cell of the partition grid must
// reproduce the sequential unpartitioned model — same output
// fingerprints, same derivation and insertion counts — on both
// storage engines. Run with -race this also exercises concurrent
// partition probes and parallel partition-local index builds.
func TestPartitionedDifferential(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(trial)*104729 + 13))
			mem := dbAfterMutations(NewDatabase(), rng, 8+rng.Intn(24))
			dir := filepath.Join(t.TempDir(), "data")
			if err := SaveDiskDatabase(dir, mem); err != nil {
				t.Fatal(err)
			}
			disk, err := OpenDiskDatabase(dir, 8<<10)
			if err != nil {
				t.Fatal(err)
			}
			mem.Freeze()
			disk.Freeze()
			engines := []struct {
				name string
				db   *Database
			}{{"mem", mem}, {"disk", disk}}

			for pi, src := range differentialPrograms {
				prog, err := Parse(src)
				if err != nil {
					t.Fatalf("program %d: %v", pi, err)
				}
				for _, eng := range engines {
					base, err := prog.Eval(eng.db, WithParallelism(1), WithPartitions(1))
					if err != nil {
						t.Fatalf("program %d %s baseline: %v", pi, eng.name, err)
					}
					// Derivation counts differ between the sequential and the
					// round-barriered parallel engine (sequential passes see
					// intra-round growth), but must not depend on the fan-out
					// within the parallel engine.
					parDerivations := -1
					for _, cell := range partitionGrid {
						res, err := prog.Eval(eng.db,
							WithParallelism(cell.parallel), WithPartitions(cell.partitions))
						if err != nil {
							t.Fatalf("program %d %s p%d/w%d: %v",
								pi, eng.name, cell.partitions, cell.parallel, err)
						}
						for _, p := range prog.OutputPredicates() {
							if res.Relation(p).Fingerprint() != base.Relation(p).Fingerprint() {
								t.Fatalf("program %d %s p%d/w%d: %s fingerprint diverged",
									pi, eng.name, cell.partitions, cell.parallel, p)
							}
						}
						if res.Stats.Inserted != base.Stats.Inserted {
							t.Fatalf("program %d %s p%d/w%d: inserted %d, sequential %d",
								pi, eng.name, cell.partitions, cell.parallel,
								res.Stats.Inserted, base.Stats.Inserted)
						}
						if cell.partitions > 1 || cell.parallel > 1 {
							if parDerivations < 0 {
								parDerivations = res.Stats.Derivations
							} else if res.Stats.Derivations != parDerivations {
								t.Fatalf("program %d %s p%d/w%d: derivations %d depend on the fan-out (first parallel cell saw %d)",
									pi, eng.name, cell.partitions, cell.parallel,
									res.Stats.Derivations, parDerivations)
							}
						}
					}
				}
			}
		})
	}
}

// TestPartitionedPaperExamples pins the paper's Examples 1–8 (7–8
// derived from 6 via Program.Optimize, as in the paper): byte-identical
// fingerprints at every partition fan-out, deterministic and seeded.
func TestPartitionedPaperExamples(t *testing.T) {
	db := NewDatabase()
	for i := 0; i < 6; i++ {
		_ = db.Add("person", Strs(fmt.Sprintf("p%02d", i)))
	}
	for d := 0; d < 4; d++ {
		for e := 0; e < 5; e++ {
			_ = db.Add("emp", Strs(fmt.Sprintf("e%d_%d", d, e), fmt.Sprintf("dept%d", d)))
		}
	}
	for i := 0; i < 40; i++ {
		_ = db.Add("p", Strs(fmt.Sprintf("v%03d", i), fmt.Sprintf("v%03d", i+1)))
		if i%5 == 0 {
			_ = db.Add("p", Strs(fmt.Sprintf("v%03d", i), fmt.Sprintf("w%03d", i)))
		}
	}
	db.Freeze()

	type workload struct {
		name string
		prog *Program
		opts []Option
	}
	var workloads []workload
	for _, ex := range paperExamples {
		prog := mustParse(t, ex.src)
		workloads = append(workloads, workload{ex.name, prog, nil})
		workloads = append(workloads, workload{ex.name + "-seeded", prog, []Option{WithSeed(7)}})
	}
	ex8, err := mustParse(t, paperExamples[5].src).Optimize("q")
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, workload{"ex7-8-optimized", ex8, []Option{WithSeed(7)}})

	modelOf := func(w workload, extra ...Option) string {
		t.Helper()
		res, err := w.prog.Eval(db, append(append([]Option{}, w.opts...), extra...)...)
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		var b strings.Builder
		for _, p := range w.prog.OutputPredicates() {
			fmt.Fprintf(&b, "%s=%s\n", p, res.Relation(p).Fingerprint())
		}
		return b.String()
	}

	for _, w := range workloads {
		want := modelOf(w, WithParallelism(1), WithPartitions(1))
		for _, cell := range partitionGrid {
			got := modelOf(w, WithParallelism(cell.parallel), WithPartitions(cell.partitions))
			if got != want {
				t.Errorf("%s: p%d/w%d model diverged from sequential\nwant:\n%s\ngot:\n%s",
					w.name, cell.partitions, cell.parallel, want, got)
			}
		}
	}
}

// TestPartitionedLiveViewInterleaving interleaves live-view maintenance
// with partitioned evaluation options: incremental propagation itself
// stays sequential (its delta passes are not partitioned), but views
// created and updated under WithPartitions must track a from-scratch
// sequential recompute exactly through a random insert/delete history.
func TestPartitionedLiveViewInterleaving(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	prog := mustParse(t, `
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- tc(X, Y), edge(Y, Z).
		node(X) :- edge(X, _).
		hasout(X) :- edge(X, _).
		sink(X) :- node(X), not hasout(X).
	`)
	db := NewDatabase()
	names := make([]string, 12)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	sym := func() Value { return Str(names[rng.Intn(len(names))]) }
	for i := 0; i < 30; i++ {
		db.Add("edge", Tuple{sym(), sym()})
	}
	db.Freeze()

	opts := []Option{WithPartitions(8), WithParallelism(2)}
	lv, err := prog.NewLiveView(db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		var ins, dels []Fact
		for i := 0; i < 1+rng.Intn(4); i++ {
			ins = append(ins, Fact{Pred: "edge", Tuple: Tuple{sym(), sym()}})
		}
		if all := db.Relation("edge").Sorted(); len(all) > 0 {
			for i := 0; i < 1+rng.Intn(3); i++ {
				dels = append(dels, Fact{Pred: "edge", Tuple: all[rng.Intn(len(all))]})
			}
		}
		next, _, err := lv.Apply(ins, dels, opts...)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		db = next
		want, err := prog.Eval(db, WithParallelism(1), WithPartitions(1))
		if err != nil {
			t.Fatalf("round %d recompute: %v", round, err)
		}
		for _, p := range prog.OutputPredicates() {
			if lv.Relation(p).Fingerprint() != want.Relation(p).Fingerprint() {
				t.Fatalf("round %d: view %s diverged from sequential recompute", round, p)
			}
		}
	}
}
