package idlog

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func empDB() *Database {
	db := NewDatabase()
	for _, e := range [][2]string{
		{"joe", "toys"}, {"sue", "toys"}, {"ann", "toys"},
		{"bob", "shoes"}, {"eve", "shoes"},
	} {
		_ = db.Add("emp", Strs(e[0], e[1]))
	}
	return db
}

func TestParseAndEvalQuickstart(t *testing.T) {
	prog, err := Parse(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	_ = db.AddAll("e", Strs("a", "b"), Strs("b", "c"))
	res, err := prog.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation("tc").Len() != 3 {
		t.Fatalf("tc = %v", res.Relation("tc"))
	}
}

func TestParseError(t *testing.T) {
	if _, err := Parse("p(X :- q(X)."); err == nil || !strings.Contains(err.Error(), "idlog:") {
		t.Fatalf("err = %v", err)
	}
}

func TestSamplingHeadline(t *testing.T) {
	prog, err := Parse(`select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Eval(empDB(), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation("select_two_emp").Len() != 4 {
		t.Fatalf("sample = %v", res.Relation("select_two_emp"))
	}
}

func TestChoiceProgramsAreTranslated(t *testing.T) {
	prog, err := Parse(`all_depts(D) :- emp(N, D), choice((D), (N)).`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "[") {
		t.Fatalf("translated program has no ID-literal:\n%s", prog)
	}
	if !strings.Contains(prog.Source(), "choice((D), (N))") {
		t.Fatalf("Source() lost the choice literal:\n%s", prog.Source())
	}
	res, err := prog.Eval(empDB())
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation("all_depts").Len() != 2 {
		t.Fatalf("all_depts = %v", res.Relation("all_depts"))
	}
}

func TestEnumerateFacade(t *testing.T) {
	prog, err := Parse(`
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	_ = db.AddAll("person", Strs("a"), Strs("b"))
	answers, err := prog.Enumerate(db, []string{"man"})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 4 {
		t.Fatalf("answers = %d, want 4", len(answers))
	}
}

func TestEnumerateBudgetOption(t *testing.T) {
	prog, err := Parse(`one(N) :- big[](N, 0).`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := int64(0); i < 8; i++ {
		_ = db.Add("big", Ints(i))
	}
	if _, err := prog.Enumerate(db, []string{"one"}, WithMaxRuns(3)); err == nil {
		t.Fatalf("budget not enforced")
	}
}

func TestOptimizeFacade(t *testing.T) {
	prog, err := Parse(`
		q(X) :- a(X, Y).
		a(X, Y) :- p(X, Z), a(Z, Y).
		a(X, Y) :- p(X, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := prog.Optimize("q")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opt.String(), "p[1](X, Y, 0)") {
		t.Fatalf("optimized program:\n%s", opt)
	}
	db := NewDatabase()
	_ = db.AddAll("p", Ints(1, 2), Ints(2, 3))
	a, err := prog.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	b, err := opt.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Relation("q").Equal(b.Relation("q")) {
		t.Fatalf("optimized result differs")
	}
}

func TestSampleFacade(t *testing.T) {
	spec := SampleSpec{Relation: "emp", Arity: 2, GroupBy: []int{2}, K: 2}
	sample, err := Sample(spec, empDB(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Len() != 4 {
		t.Fatalf("sample = %v", sample)
	}
	prog, err := SampleProgram(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "emp[2]") {
		t.Fatalf("sample program = %s", prog)
	}
}

func TestProgramIntrospection(t *testing.T) {
	prog, err := Parse(`
		reach(X) :- start(X).
		reach(Y) :- reach(X), e(X, Y).
		unreach(X) :- node(X), not reach(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Strata() != 2 {
		t.Fatalf("strata = %d", prog.Strata())
	}
	in := prog.InputPredicates()
	if len(in) != 3 || in[0] != "e" || in[1] != "node" || in[2] != "start" {
		t.Fatalf("inputs = %v", in)
	}
	out := prog.OutputPredicates()
	if len(out) != 2 || out[0] != "reach" || out[1] != "unreach" {
		t.Fatalf("outputs = %v", out)
	}
}

func TestDeterministicByDefault(t *testing.T) {
	prog, err := Parse(`pick(N) :- emp[2](N, D, 0).`)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := prog.Eval(empDB())
	b, _ := prog.Eval(empDB())
	if !a.Relation("pick").Equal(b.Relation("pick")) {
		t.Fatalf("default evaluation not deterministic")
	}
}

func TestNaiveOptionAgrees(t *testing.T) {
	prog, err := Parse(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := int64(0); i < 8; i++ {
		_ = db.Add("e", Ints(i, i+1))
	}
	a, err := prog.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	b, err := prog.Eval(db, WithNaive())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Relation("tc").Equal(b.Relation("tc")) {
		t.Fatalf("naive option changed the result")
	}
}

func TestMaxDerivationsOption(t *testing.T) {
	prog, err := Parse(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := int64(0); i < 30; i++ {
		_ = db.Add("e", Ints(i, i+1))
	}
	if _, err := prog.Eval(db, WithMaxDerivations(5)); err == nil {
		t.Fatalf("derivation budget not enforced")
	}
}

func TestSnapshotRoundTripFacade(t *testing.T) {
	db := empDB()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Relation("emp").Equal(db.Relation("emp")) {
		t.Fatalf("snapshot round trip lost data")
	}
	path := filepath.Join(t.TempDir(), "db.idb")
	if err := SaveSnapshot(path, db); err != nil {
		t.Fatal(err)
	}
	again, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Relation("emp").Equal(db.Relation("emp")) {
		t.Fatalf("file snapshot round trip lost data")
	}
}

func TestCheckDeterministic(t *testing.T) {
	counting, err := Parse(`
		has_tid(T) :- item[](X, T).
		card(C) :- has_tid(T), succ(T, C), not has_tid(C).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := int64(0); i < 6; i++ {
		_ = db.Add("item", Ints(i))
	}
	ok, err := counting.CheckDeterministic(db, []string{"card"})
	if err != nil || !ok {
		t.Fatalf("counting should be deterministic: %v %v", ok, err)
	}

	picking, err := Parse(`pick(X) :- item[](X, 0).`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = picking.CheckDeterministic(db, []string{"pick"})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("picking should be detected as non-deterministic")
	}

	if _, err := counting.CheckDeterministic(db, []string{"nope"}); err == nil {
		t.Fatalf("unknown predicate accepted")
	}
}

func TestExplainFacade(t *testing.T) {
	prog, err := Parse(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	if err := AddFactsText(db, "e(a, b). e(b, c)."); err != nil {
		t.Fatal(err)
	}
	res, err := prog.Eval(db, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := res.Explain("tc", Strs("a", "c"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree, "[input]") || !strings.Contains(tree, "tc(a, c)") {
		t.Fatalf("tree:\n%s", tree)
	}
}
