// Command demand shows goal-directed evaluation via the magic-sets
// rewrite: a reachability point query against a large graph, answered
// once by full bottom-up evaluation and once through the demand path,
// with the engine's work counters making the difference visible. The
// rewrite restricts evaluation to the query's derivation cone — the
// nodes actually reachable from the queried source — so the derivation
// count tracks the cone size instead of the full transitive closure.
package main

import (
	"fmt"
	"log"

	"idlog"
)

func main() {
	src := `
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
	`
	prog, err := idlog.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	// A long chain with side branches: the full closure is quadratic in
	// the chain length, but a query near the end only reaches a short
	// suffix of it.
	const chain, branch = 600, 3
	db := idlog.NewDatabase()
	leaf := int64(100000)
	for i := int64(0); i < chain; i++ {
		if err := db.Add("edge", idlog.Ints(i, i+1)); err != nil {
			log.Fatal(err)
		}
		for b := 0; b < branch; b++ {
			if err := db.Add("edge", idlog.Ints(i, leaf)); err != nil {
				log.Fatal(err)
			}
			leaf++
		}
	}
	fmt.Printf("workload: chain of %d with %d side branches per node (%d edges)\n\n",
		chain, branch, chain*(branch+1))

	goal := fmt.Sprintf("reach(%d, Y)", chain-40)
	pq, err := prog.Prepare(goal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("goal: ?- %s   (magic rewrite applicable: %v)\n\n", goal, pq.UsesMagic())

	full, err := pq.Query(db, idlog.WithMagic(false))
	if err != nil {
		log.Fatal(err)
	}
	magic, err := pq.Query(db)
	if err != nil {
		log.Fatal(err)
	}
	if len(full.Rows) != len(magic.Rows) {
		log.Fatalf("answer sets diverge: %d vs %d rows", len(full.Rows), len(magic.Rows))
	}

	fmt.Printf("answers: %d reachable nodes, identical either way\n\n", len(magic.Rows))
	fmt.Println("work counters             magic off     magic on")
	fmt.Printf("  derivations           %11d  %11d\n", full.Stats.Derivations, magic.Stats.Derivations)
	fmt.Printf("  tuples inserted       %11d  %11d\n", full.Stats.Inserted, magic.Stats.Inserted)
	fmt.Printf("  tuples scanned        %11d  %11d\n", full.Stats.TuplesScanned, magic.Stats.TuplesScanned)
	fmt.Printf("\nderivation ratio: %.1fx fewer with the demand rewrite\n",
		float64(full.Stats.Derivations)/float64(magic.Stats.Derivations))

	// The plan output shows what actually executes: the adorned rules,
	// their magic guards, and the seed carrying the goal's constant.
	plan, err := pq.ExplainPlan(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan:\n%s", plan)
}
