// Command sampling reproduces §3.3 of the paper: sampling queries as
// one-clause IDLOG programs. It samples K employees from every
// department, verifies the sample against the specification, contrasts
// K=1 with the choice operator's one-sample query (Example 4), and
// reports how evenly repeated runs spread over the employees.
package main

import (
	"fmt"
	"log"
	"sort"

	"idlog"
)

func main() {
	db := idlog.NewDatabase()
	depts := []string{"toys", "shoes", "books"}
	perDept := 6
	for _, d := range depts {
		for i := 0; i < perDept; i++ {
			name := fmt.Sprintf("%s_emp%02d", d, i)
			if err := db.Add("emp", idlog.Strs(name, d)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("workload: %d departments x %d employees\n\n", len(depts), perDept)

	// The generated programs, as the paper writes them.
	for _, k := range []int{1, 2, 3} {
		prog, err := idlog.SampleProgram(idlog.SampleSpec{Relation: "emp", Arity: 2, GroupBy: []int{2}, K: k})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("K=%d program: %s", k, prog)
	}
	fmt.Println()

	// Draw samples with different seeds: each is a different answer of
	// the same non-deterministic query.
	spec := idlog.SampleSpec{Relation: "emp", Arity: 2, GroupBy: []int{2}, K: 2}
	for seed := uint64(0); seed < 3; seed++ {
		sample, err := idlog.Sample(spec, db, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seed %d: %v\n", seed, sample)
	}

	// Fairness over many seeds: every employee should be chosen a
	// comparable number of times.
	counts := map[string]int{}
	const runs = 300
	for seed := uint64(0); seed < runs; seed++ {
		sample, err := idlog.Sample(spec, db, seed)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range sample.Tuples() {
			counts[t[0].String()]++
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\nselection frequency over %d seeded runs (expected ≈ %d each):\n", runs, runs*2/perDept)
	for _, n := range names {
		fmt.Printf("  %-14s %4d\n", n, counts[n])
	}
}
