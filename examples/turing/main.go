// Command turing demonstrates §5 of the paper (the expressive power of
// non-deterministic IDLOG): a non-deterministic Turing machine is
// compiled into a stratified IDLOG program whose ID-literal guesses the
// whole choice sequence, and acceptance becomes "some answer of the
// non-deterministic query derives tm_accept" — the existential
// acceptance of NGTMs behind Theorem 6.
package main

import (
	"fmt"
	"log"
	"strings"

	"idlog"
	"idlog/internal/turing"
)

func main() {
	// A genuinely non-deterministic machine: scanning right, on a 1 it
	// may either keep going or accept — it accepts iff the tape
	// contains a 1.
	m := &turing.Machine{
		Start: "g", Accept: "acc", Blank: "_",
		Rules: []turing.Rule{
			{State: "g", Read: "0", NewState: "g", Write: "0", Move: turing.Right},
			{State: "g", Read: "1", NewState: "g", Write: "1", Move: turing.Right},
			{State: "g", Read: "1", NewState: "acc", Write: "1", Move: turing.Stay},
		},
	}
	if err := m.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %d rules, deterministic=%v\n\n", len(m.Rules), m.Deterministic())

	const steps, tapeBudget = 4, 6
	compiled, err := turing.Compile(m, steps, tapeBudget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled to IDLOG: %d clauses, %d strata\n",
		len(compiled.Program.Clauses), len(compiled.Info.Strata))
	fmt.Println("the guess stratum:")
	for _, c := range compiled.Program.Clauses {
		s := c.String()
		if strings.HasPrefix(s, "tm_branch") || strings.HasPrefix(s, "tm_pick") {
			fmt.Println("  ", s)
		}
	}
	fmt.Println()

	for _, input := range []string{"001", "000", "1", ""} {
		tape := make([]string, len(input))
		for i := range input {
			tape[i] = string(input[i])
		}
		directOK, configs := m.Accepts(tape, steps)
		compiledOK, sum, err := compiled.Accepts(turing.TapeDB(tape), 500000)
		if err != nil {
			log.Fatal(err)
		}
		agree := "agrees"
		if directOK != compiledOK {
			agree = "DISAGREES"
		}
		fmt.Printf("input %-4q direct(BFS over %2d configs)=%-5v compiled(%d answers, %d accepting)=%-5v  -> %s\n",
			input, configs, directOK, sum.Answers, sum.Accepting, compiledOK, agree)
	}

	// Generic-TM flavour: put a relational database on the tape.
	db := idlog.NewDatabase()
	if err := db.AddAll("emp", idlog.Strs("joe", "toys"), idlog.Strs("sue", "shoes")); err != nil {
		log.Fatal(err)
	}
	tape, enc, err := turing.EncodeDatabase(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndatabase-as-tape (domain codewords of width %d):\n  %s\n",
		enc.Width(), strings.Join(tape, ""))
}
