// Command aggregates demonstrates a result from the companion paper
// [She90b] that this paper builds on: tuple-identifiers enhance the
// DETERMINISTIC expressive power of DATALOG. Pure DATALOG cannot count
// — but with an ungrouped ID-relation, |r| is simply max tid + 1, and
// the answer is invariant under the choice of ID-function, so the
// non-deterministic construct computes a deterministic query.
//
// The program computes relation cardinality, parity, and per-group
// counts, and verifies invariance across many oracles.
package main

import (
	"fmt"
	"log"

	"idlog"
)

const program = `
	% |item| = max tid + 1 under ANY ID-function of item[].
	has_tid(T)   :- item[](X, T).
	card(C)      :- has_tid(T), succ(T, C), not has_tid(C).
	even         :- card(C), mod(C, 2, 0).
	odd          :- card(C), mod(C, 2, 1).

	% per-department employee counts via grouped tids
	dept_tid(D, T)  :- emp[2](N, D, T).
	dept_size(D, C) :- dept_tid(D, T), succ(T, C), not dept_tid(D, C).

	% the largest department, via counts
	smaller(D) :- dept_size(D, C), dept_size(D2, C2), C < C2.
	largest(D) :- dept_size(D, C), not smaller(D).
`

func main() {
	prog, err := idlog.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	db := idlog.NewDatabase()
	items := []string{"apple", "plum", "fig", "lime", "pear"}
	for _, it := range items {
		if err := db.Add("item", idlog.Strs(it)); err != nil {
			log.Fatal(err)
		}
	}
	emps := [][2]string{
		{"joe", "toys"}, {"sue", "toys"}, {"ann", "toys"},
		{"bob", "shoes"}, {"eve", "shoes"},
		{"kim", "books"},
	}
	for _, e := range emps {
		if err := db.Add("emp", idlog.Strs(e[0], e[1])); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("items: %d, employees: %d\n\n", len(items), len(emps))

	// Run under many different oracles: aggregates must never change.
	var first string
	for seed := uint64(0); seed < 25; seed++ {
		res, err := prog.Eval(db, idlog.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		fp := res.Relation("card").Fingerprint() +
			res.Relation("dept_size").Fingerprint() +
			res.Relation("largest").Fingerprint()
		if first == "" {
			first = fp
			fmt.Println("card:     ", res.Relation("card"))
			fmt.Println("even:     ", res.Relation("even").Len() == 1)
			fmt.Println("odd:      ", res.Relation("odd").Len() == 1)
			fmt.Println("dept_size:", res.Relation("dept_size"))
			fmt.Println("largest:  ", res.Relation("largest"))
		} else if fp != first {
			log.Fatalf("seed %d: aggregate changed with the oracle!", seed)
		}
	}
	fmt.Println("\ninvariant across 25 different ID-function oracles: true")
	fmt.Println("(a deterministic query computed with a non-deterministic construct —")
	fmt.Println(" pure DATALOG cannot express counting or parity at all)")
}
