// Command coloring uses IDLOG's non-determinism for guess-and-check
// search: a 3-coloring of a graph is guessed by an ID-literal (each
// node independently picks the candidate color that received tid 0)
// and checked by a monochromatic-edge detector. A coloring exists iff
// SOME answer of the non-deterministic query is conflict-free — the
// same existential-acceptance pattern the Theorem-6 Turing construction
// uses, here at the application level.
//
// The program then searches with seeded runs (Las-Vegas style) and,
// for the small graph, exhaustively enumerates the answer set to count
// all proper colorings.
package main

import (
	"fmt"
	"log"

	"idlog"
)

const program = `
	% candidate colors for every node
	cand(N, red)   :- node(N).
	cand(N, green) :- node(N).
	cand(N, blue)  :- node(N).
	% the guess: per node (grouping column 1), one candidate gets tid 0
	color(N, C) :- cand[1](N, C, 0).
	% the check: some edge is monochromatic
	conflict :- edge(X, Y), color(X, C), color(Y, C).
	proper :- not conflict.
`

func main() {
	prog, err := idlog.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	// An even wheel: 6-cycle plus a hub touching everything. Even
	// wheels are 3-chromatic (the odd wheel would need 4 colors and
	// every guess would fail the check).
	db := idlog.NewDatabase()
	nodes := []string{"a", "b", "c", "d", "e", "f", "hub"}
	for _, n := range nodes {
		if err := db.Add("node", idlog.Strs(n)); err != nil {
			log.Fatal(err)
		}
	}
	edges := [][2]string{
		{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"}, {"e", "f"}, {"f", "a"},
		{"hub", "a"}, {"hub", "b"}, {"hub", "c"}, {"hub", "d"}, {"hub", "e"}, {"hub", "f"},
	}
	for _, e := range edges {
		if err := db.Add("edge", idlog.Strs(e[0], e[1])); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("graph: %d nodes, %d edges (even wheel W6)\n\n", len(nodes), len(edges))

	// Las-Vegas search: try seeds until a proper coloring appears.
	for seed := uint64(0); ; seed++ {
		res, err := prog.Eval(db, idlog.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		if res.Relation("proper").Len() == 1 {
			fmt.Printf("seed %d found a proper 3-coloring:\n  %v\n\n", seed, res.Relation("color"))
			break
		}
		if seed > 10000 {
			log.Fatal("no coloring found in 10000 seeds")
		}
	}

	// Exhaustive count via answer-set enumeration: every assignment of
	// tids yields one coloring; count the distinct proper ones.
	answers, err := prog.Enumerate(db, []string{"color", "proper"}, idlog.WithMaxRuns(2000000))
	if err != nil {
		log.Fatal(err)
	}
	proper := 0
	for _, a := range answers {
		if a.Relations["proper"].Len() == 1 {
			proper++
		}
	}
	// Expected: 3 hub colors x alternating 2-colorings of the even rim
	// = 3 x 2 = 6 proper colorings out of 3^7 assignments.
	fmt.Printf("distinct colorings: %d, proper: %d (expected 6)\n", len(answers), proper)
}
