// Command semantics puts §3.2 of the paper on one screen: the same
// non-deterministic query — guess each person's sex — expressed in the
// four formalisms the paper discusses, with their answer families
// computed side by side:
//
//	DATALOG∨  man(X) ∨ woman(X) :- person(X)          (minimal models)
//	stable    man(X) :- person(X), not woman(X) / ... (stable models)
//	DL        the same rules under the non-deterministic
//	          inflationary semantics                   (outcomes)
//	IDLOG     sex_guess + ID-literal                   (perfect models)
//
// All four families coincide: the powerset of persons for man.
package main

import (
	"fmt"
	"log"
	"sort"

	"idlog"
	"idlog/internal/disjunctive"
	"idlog/internal/inflate"
	"idlog/internal/stable"
)

func main() {
	people := []string{"ada", "bob", "cyd"}
	db := idlog.NewDatabase()
	for _, p := range people {
		if err := db.Add("person", idlog.Strs(p)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("persons: %v — expecting %d answers (the powerset) from every semantics\n\n",
		people, 1<<len(people))

	families := map[string][]string{}

	// DATALOG∨ minimal models.
	disj, err := disjunctive.Parse(`man(X), woman(X) :- person(X).`)
	if err != nil {
		log.Fatal(err)
	}
	models, err := disj.MinimalModels(db, disjunctive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range models {
		families["DATALOG-or"] = append(families["DATALOG-or"], m.Relation("man", 1).String())
	}

	// Stable models of the non-stratified program.
	stab, err := stable.Parse(`
		man(X) :- person(X), not woman(X).
		woman(X) :- person(X), not man(X).
	`)
	if err != nil {
		log.Fatal(err)
	}
	smodels, err := stab.StableModels(db, stable.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range smodels {
		families["stable"] = append(families["stable"], m.Relation("man", 1).String())
	}

	// DL non-deterministic inflationary outcomes.
	dl, err := inflate.Parse(inflate.DL, `
		man(X) :- person(X), not woman(X).
		woman(X) :- person(X), not man(X).
	`)
	if err != nil {
		log.Fatal(err)
	}
	outcomes, err := dl.EnumerateOutcomes(db, []string{"man"}, inflate.EnumerateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range outcomes {
		families["DL"] = append(families["DL"], a.Relations["man"].String())
	}

	// IDLOG perfect models (Example 2).
	prog, err := idlog.Parse(`
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := prog.Enumerate(db, []string{"man"})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range answers {
		families["IDLOG"] = append(families["IDLOG"], a.Relations["man"].String())
	}

	names := []string{"DATALOG-or", "stable", "DL", "IDLOG"}
	for _, n := range names {
		sort.Strings(families[n])
		fmt.Printf("%-11s %d answers\n", n, len(families[n]))
	}
	fmt.Println()
	ref := families["IDLOG"]
	same := true
	for _, n := range names {
		if fmt.Sprint(families[n]) != fmt.Sprint(ref) {
			same = false
		}
	}
	fmt.Println("families identical across all four semantics:", same)
	fmt.Println("\nthe family (shown once):")
	for _, f := range ref {
		fmt.Println("  ", f)
	}
}
