// Command quickstart is the smallest end-to-end tour of the idlog
// public API: load facts, run a recursive program with stratified
// negation, then run the paper's headline non-deterministic sampling
// query under two different seeds.
package main

import (
	"fmt"
	"log"

	"idlog"
)

func main() {
	// --- Deterministic DATALOG: reachability with negation ---------
	prog, err := idlog.Parse(`
		reach(X) :- start(X).
		reach(Y) :- reach(X), link(X, Y).
		node(X)  :- link(X, Y).
		node(Y)  :- link(X, Y).
		isolated(X) :- node(X), not reach(X).
	`)
	if err != nil {
		log.Fatal(err)
	}

	db := idlog.NewDatabase()
	edges := [][2]string{
		{"web", "app"}, {"app", "db"}, {"app", "cache"},
		{"batch", "db"}, {"legacy", "tape"},
	}
	for _, e := range edges {
		if err := db.Add("link", idlog.Strs(e[0], e[1])); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Add("start", idlog.Strs("web")); err != nil {
		log.Fatal(err)
	}

	res, err := prog.Eval(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reachable from web:", res.Relation("reach"))
	fmt.Println("isolated:          ", res.Relation("isolated"))
	fmt.Println("stats:             ", res.Stats)

	// --- Non-deterministic IDLOG: the paper's sampling query -------
	sampler, err := idlog.Parse(`
		% two employees from every department (§1 of the paper)
		select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.
	`)
	if err != nil {
		log.Fatal(err)
	}
	emp := idlog.NewDatabase()
	for _, e := range [][2]string{
		{"joe", "toys"}, {"sue", "toys"}, {"ann", "toys"}, {"tom", "toys"},
		{"bob", "shoes"}, {"eve", "shoes"}, {"kim", "shoes"},
	} {
		if err := emp.Add("emp", idlog.Strs(e[0], e[1])); err != nil {
			log.Fatal(err)
		}
	}
	for _, seed := range []uint64{1, 2} {
		r, err := sampler.Eval(emp, idlog.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seed %d sample:      %v\n", seed, r.Relation("select_two_emp"))
	}
}
