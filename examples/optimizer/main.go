// Command optimizer reproduces §4 of the paper: optimizing DATALOG
// programs through existential arguments. It runs the adornment
// algorithm on Example 6, shows the projection-pushed and ID-rewritten
// programs (Example 8), and measures the reduction in intermediate
// tuples on a synthetic graph.
package main

import (
	"fmt"
	"log"

	"idlog"
)

func main() {
	// Example 6: is X the start of some edge-path?
	src := `
		q(X) :- a(X, Y).
		a(X, Y) :- p(X, Z), a(Z, Y).
		a(X, Y) :- p(X, Y).
	`
	prog, err := idlog.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := prog.Optimize("q")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("original (Example 6):")
	fmt.Print(indent(prog.String()))
	fmt.Println("optimized (Example 8: projections pushed, ∃-existential ID-literal):")
	fmt.Print(indent(opt.String()))

	// A chain with heavy fan-out: each chain node also points at `fan`
	// leaf nodes, so a(X, Y) is large but q(X) only needs one witness.
	const chain, fan = 60, 25
	db := idlog.NewDatabase()
	leaf := int64(10000)
	for i := int64(0); i < chain; i++ {
		if err := db.Add("p", idlog.Ints(i, i+1)); err != nil {
			log.Fatal(err)
		}
		for f := 0; f < fan; f++ {
			if err := db.Add("p", idlog.Ints(i, leaf)); err != nil {
				log.Fatal(err)
			}
			leaf++
		}
	}
	fmt.Printf("workload: chain of %d with fan-out %d (%d p-edges)\n\n", chain, fan, chain*(fan+1))

	before, err := prog.Eval(db)
	if err != nil {
		log.Fatal(err)
	}
	after, err := opt.Eval(db)
	if err != nil {
		log.Fatal(err)
	}
	if !before.Relation("q").Equal(after.Relation("q")) {
		log.Fatal("optimized program computed a different answer")
	}
	fmt.Printf("answer |q| = %d (identical before/after)\n\n", before.Relation("q").Len())
	fmt.Printf("%-22s %12s %12s\n", "", "original", "optimized")
	fmt.Printf("%-22s %12d %12d\n", "derivations", before.Stats.Derivations, after.Stats.Derivations)
	fmt.Printf("%-22s %12d %12d\n", "tuples scanned", before.Stats.TuplesScanned, after.Stats.TuplesScanned)
	fmt.Printf("%-22s %12d %12d\n", "new tuples inserted", before.Stats.Inserted, after.Stats.Inserted)
	ratio := float64(before.Stats.Derivations) / float64(after.Stats.Derivations)
	fmt.Printf("\nintermediate-tuple reduction: %.1fx\n", ratio)

	// The all_depts motivating example from §1.
	fmt.Println("\n--- §1 motivating example ---")
	ad, err := idlog.Parse(`all_depts(Dept) :- emp(Name, Dept).`)
	if err != nil {
		log.Fatal(err)
	}
	adOpt, err := ad.Optimize("all_depts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("optimized: ", adOpt.String())
}

func indent(s string) string {
	out := ""
	cur := "  "
	for _, r := range s {
		if r == '\n' {
			out += cur + "\n"
			cur = "  "
			continue
		}
		cur += string(r)
	}
	return out
}
