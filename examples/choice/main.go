// Command choice walks through §3.2.2 of the paper: the DATALOG^C
// choice operator, its translation into stratified IDLOG (Theorem 2),
// and exhaustive enumeration of a choice query's intended models.
package main

import (
	"fmt"
	"log"

	"idlog"
)

func main() {
	// The canonical DATALOG^C program [KN88]: one employee from every
	// department.
	prog, err := idlog.Parse(`
		select_emp(Name) :- emp(Name, Dept), choice((Dept), (Name)).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("DATALOG^C source:\n  ", prog.Source())
	fmt.Println("\ntranslated to stratified IDLOG (Theorem 2):")
	fmt.Print(indent(prog.String()))

	db := idlog.NewDatabase()
	for _, e := range [][2]string{
		{"joe", "toys"}, {"sue", "toys"}, {"ann", "toys"},
		{"bob", "shoes"}, {"eve", "shoes"},
	} {
		if err := db.Add("emp", idlog.Strs(e[0], e[1])); err != nil {
			log.Fatal(err)
		}
	}

	// One intended model per run.
	for seed := uint64(0); seed < 3; seed++ {
		res, err := prog.Eval(db, idlog.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seed %d: %v\n", seed, res.Relation("select_emp"))
	}

	// All intended models: 3 toys-choices x 2 shoes-choices = 6.
	answers, err := prog.Enumerate(db, []string{"select_emp"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall %d intended models:\n", len(answers))
	for _, a := range answers {
		fmt.Println("  ", a.Relations["select_emp"])
	}

	// The sex_guess program of the paper: choice assigns each person a
	// sex; man/woman are complementary in every model.
	guess, err := idlog.Parse(`
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		sex(X, Y) :- sex_guess(X, Y), choice((X), (Y)).
		man(X) :- sex(X, male).
		woman(X) :- sex(X, female).
	`)
	if err != nil {
		log.Fatal(err)
	}
	people := idlog.NewDatabase()
	if err := people.AddAll("person", idlog.Strs("ada"), idlog.Strs("bob")); err != nil {
		log.Fatal(err)
	}
	ans, err := guess.Enumerate(people, []string{"man", "woman"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsex_guess intended models (%d):\n", len(ans))
	for _, a := range ans {
		fmt.Printf("   man=%v woman=%v\n", a.Relations["man"], a.Relations["woman"])
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
